"""Cross-module integration tests: full pipelines at tiny scale.

Each test exercises a complete user-facing flow (the same paths the
examples and experiments take), catching wiring regressions unit tests
can miss.
"""

import numpy as np
import pytest

from repro.core import FedOMDConfig, FedOMDTrainer
from repro.federated import FederatedTrainer, TrainerConfig
from repro.graphs import load_dataset, louvain_partition


@pytest.fixture(scope="module")
def setup():
    g = load_dataset("cora", seed=0, scale=0.15)
    parts = louvain_partition(g, 3, np.random.default_rng(0)).parts
    return g, parts


class TestEndToEndFedOMD:
    def test_full_pipeline_improves_over_init(self, setup):
        _, parts = setup
        cfg = FedOMDConfig(max_rounds=40, patience=80, hidden=32)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        init_acc = tr.evaluate("test")
        hist = tr.run()
        assert hist.final_test_accuracy() > init_acc

    def test_beats_chance_clearly(self, setup):
        # Tiny twin (7 labeled nodes total) and a short budget: the bar
        # is clearly-above-chance, not paper-level accuracy.
        g, parts = setup
        cfg = FedOMDConfig(max_rounds=60, patience=120, hidden=32)
        acc = FedOMDTrainer(parts, cfg, seed=0).run().final_test_accuracy()
        assert acc > 1.5 / g.num_classes

    def test_cmd_loss_decreases_party_hidden_gap(self, setup):
        # Train with CMD; measure the two-sample CMD between parties'
        # hidden features before and after — the quantity FedOMD claims
        # to shrink (its whole point).
        from repro.autograd import no_grad
        from repro.core.cmd import cmd_distance_arrays

        _, parts = setup

        def party_gap(trainer):
            hiddens = []
            for c in trainer.clients:
                c.model.eval()
                with no_grad():
                    _, h = c.model.forward_with_hidden(c.graph)
                hiddens.append(h[0].data)
            # Normalize by the mean activation magnitude so the gap
            # measures distribution *shape*, not overall scale (which
            # the two training runs are free to choose differently).
            scale = np.mean([np.abs(h).mean() for h in hiddens]) + 1e-12
            hs = [h / scale for h in hiddens]
            gaps = [
                cmd_distance_arrays(hs[i], hs[j])
                for i in range(len(hs))
                for j in range(i + 1, len(hs))
            ]
            return float(np.mean(gaps))

        cfg = FedOMDConfig(max_rounds=40, patience=80, hidden=32, beta=0.05)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr.run()
        after = party_gap(tr)
        cfg_nocmd = FedOMDConfig(max_rounds=40, patience=80, hidden=32, use_cmd=False)
        tr2 = FedOMDTrainer(parts, cfg_nocmd, seed=0)
        tr2.run()
        after_nocmd = party_gap(tr2)
        # CMD-trained parties end closer in distribution than CMD-free.
        assert after < after_nocmd

    def test_checkpoint_resume_matches(self, setup, tmp_path):
        from repro.gnn import OrthoGCN
        from repro.nn import load_checkpoint, save_checkpoint

        _, parts = setup
        cfg = FedOMDConfig(max_rounds=10, patience=40, hidden=16)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr.run()
        acc = tr.evaluate("test")
        path = save_checkpoint(tr.clients[0].model, str(tmp_path / "omd"), {"acc": acc})

        fresh = OrthoGCN(
            parts[0].num_features, parts[0].num_classes, hidden=16,
            rng=np.random.default_rng(99),
        )
        fresh, meta = load_checkpoint(fresh, path)
        assert meta["acc"] == acc
        # Restored global model scores identically on party 0.
        from repro.autograd import no_grad
        from repro.nn import accuracy

        fresh.eval()
        tr.clients[0].model.eval()
        with no_grad():
            a = accuracy(fresh(parts[0]), parts[0].y, parts[0].test_mask)
            b = accuracy(tr.clients[0].model(parts[0]), parts[0].y, parts[0].test_mask)
        assert a == b


class TestEvaluationProtocol:
    def test_weighted_average_matches_manual(self, setup):
        _, parts = setup
        tr = FederatedTrainer(parts, TrainerConfig(max_rounds=2, patience=10, hidden=16), seed=0)
        tr.run()
        accs, ns = [], []
        for c in tr.clients:
            a, n = c.evaluate("test")
            accs.append(a)
            ns.append(n)
        manual = float(np.average(accs, weights=ns))
        assert tr.evaluate("test") == pytest.approx(manual)

    def test_global_equals_reassembled_after_fedavg(self, setup):
        # Post-aggregation all clients share weights, so evaluating the
        # reassembled global prediction must match party-weighted acc.
        from repro.autograd import no_grad
        from repro.nn import accuracy

        g, _ = setup
        pr = louvain_partition(g, 3, np.random.default_rng(1))
        tr = FederatedTrainer(pr.parts, TrainerConfig(max_rounds=3, patience=10, hidden=16), seed=0)
        tr.run()
        # Reassemble predictions onto global node ids.
        correct, total = 0, 0
        for c, nodes in zip(tr.clients, pr.node_maps):
            c.model.eval()
            with no_grad():
                logits = c.model(c.graph)
            mask = c.graph.test_mask
            pred = logits.data.argmax(axis=1)[mask]
            correct += int((pred == c.graph.y[mask]).sum())
            total += int(mask.sum())
        assert tr.evaluate("test") == pytest.approx(correct / total)


class TestSecureFedOMD:
    def test_secure_exchange_plugs_into_trainer(self, setup):
        from repro.extensions import SecureMomentExchange

        _, parts = setup
        cfg = FedOMDConfig(max_rounds=4, patience=10, hidden=16)
        plain = FedOMDTrainer(parts, cfg, seed=0)
        secure = FedOMDTrainer(parts, cfg, seed=0)
        secure.exchange = SecureMomentExchange(secure.comm, orders=cfg.orders)
        h1 = plain.run()
        h2 = secure.run()
        # Masking must not change training up to float round-off.
        np.testing.assert_allclose(h1.test_accuracies, h2.test_accuracies, atol=1e-6)


class TestExperimentCLI:
    def test_main_runs_table2(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        rc = main(["table2", "--mode", "smoke", "--out", str(tmp_path)])
        assert rc == 0
        assert "table2" in capsys.readouterr().out
        assert (tmp_path / "table2.csv").exists()

    def test_main_unknown_experiment(self, tmp_path):
        from repro.experiments.__main__ import main

        with pytest.raises(KeyError):
            main(["table99", "--mode", "smoke", "--out", str(tmp_path)])
