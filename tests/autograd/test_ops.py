"""Gradient checks for every autograd op (finite differences)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (
    Tensor,
    gradcheck,
    matmul,
    spmm,
    relu,
    leaky_relu,
    sigmoid,
    tanh,
    softmax,
    log_softmax,
    dropout,
    concat,
    stack,
    l2_norm,
    frobenius_norm,
)
from repro.autograd.ops_basic import add, sub, mul, div, neg, power, exp, log, sqrt, clip, absolute, maximum
from repro.autograd.ops_matmul import transpose
from repro.autograd.ops_reduce import sum as tsum, mean as tmean, max as tmax
from repro.autograd.ops_shape import reshape, getitem

RNG = np.random.default_rng(42)


def rand_t(*shape, positive=False, requires_grad=True):
    data = RNG.standard_normal(shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=requires_grad)


class TestElementwise:
    def test_add(self):
        a, b = rand_t(3, 4), rand_t(3, 4)
        assert gradcheck(lambda x, y: (add(x, y) ** 2).sum(), [a, b])

    def test_add_broadcast_row(self):
        a, b = rand_t(3, 4), rand_t(4)
        assert gradcheck(lambda x, y: (add(x, y) ** 2).sum(), [a, b])

    def test_add_broadcast_scalar(self):
        a, b = rand_t(3, 4), rand_t()
        assert gradcheck(lambda x, y: (add(x, y) ** 2).sum(), [a, b])

    def test_sub(self):
        a, b = rand_t(3, 4), rand_t(3, 4)
        assert gradcheck(lambda x, y: (sub(x, y) ** 2).sum(), [a, b])

    def test_neg(self):
        assert gradcheck(lambda x: (neg(x) ** 3).sum(), [rand_t(3, 4)])

    def test_neg_dunder_matches_op(self):
        a = rand_t(2, 3, requires_grad=False)
        np.testing.assert_array_equal((-a).data, neg(a).data)

    def test_sub_broadcast_keepdim_mean(self):
        # The moment computation subtracts a (1, d) mean from (n, d) features.
        a, b = rand_t(5, 3), rand_t(1, 3)
        assert gradcheck(lambda x, y: (sub(x, y) ** 4).sum(), [a, b])

    def test_mul(self):
        a, b = rand_t(3, 4), rand_t(3, 4)
        assert gradcheck(lambda x, y: mul(x, y).sum(), [a, b])

    def test_mul_broadcast_col(self):
        a, b = rand_t(3, 4), rand_t(3, 1)
        assert gradcheck(lambda x, y: mul(x, y).sum(), [a, b])

    def test_div(self):
        a, b = rand_t(3, 4), rand_t(3, 4, positive=True)
        assert gradcheck(lambda x, y: div(x, y).sum(), [a, b])

    def test_div_by_scalar_constant(self):
        a = rand_t(3, 4)
        assert gradcheck(lambda x: (x / 2.5).sum(), [a])

    def test_rsub_and_rdiv(self):
        a = rand_t(3, positive=True)
        assert gradcheck(lambda x: (1.0 - x).sum(), [a])
        assert gradcheck(lambda x: (1.0 / x).sum(), [a])

    def test_neg(self):
        a = rand_t(3, 4)
        assert gradcheck(lambda x: (-x).sum(), [a])

    def test_power_square(self):
        a = rand_t(3, 4)
        assert gradcheck(lambda x: (power(x, 2)).sum(), [a])

    @pytest.mark.parametrize("j", [2, 3, 4, 5])
    def test_power_moment_orders(self, j):
        # Exactly the exponents used by the CMD central moments (Alg. 1).
        a = rand_t(4, 3)
        assert gradcheck(lambda x: power(x, j).sum(), [a])

    def test_power_fractional_positive(self):
        a = rand_t(3, 4, positive=True)
        assert gradcheck(lambda x: power(x, 1.5).sum(), [a])

    def test_exp(self):
        a = rand_t(3, 4)
        assert gradcheck(lambda x: exp(x).sum(), [a])

    def test_log(self):
        a = rand_t(3, 4, positive=True)
        assert gradcheck(lambda x: log(x).sum(), [a])

    def test_sqrt(self):
        a = rand_t(3, 4, positive=True)
        assert gradcheck(lambda x: sqrt(x).sum(), [a])

    def test_clip_interior(self):
        a = Tensor(RNG.uniform(-0.4, 0.4, (3, 4)), requires_grad=True)
        assert gradcheck(lambda x: clip(x, -1.0, 1.0).sum(), [a])

    def test_clip_blocks_gradient_outside(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        clip(a, -1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_abs(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        assert gradcheck(lambda x: absolute(x).sum(), [a])

    def test_maximum(self):
        a, b = rand_t(3, 4), rand_t(3, 4)
        assert gradcheck(lambda x, y: maximum(x, y).sum(), [a, b])


class TestMatmul:
    def test_matmul(self):
        a, b = rand_t(4, 3), rand_t(3, 5)
        assert gradcheck(lambda x, y: matmul(x, y).sum(), [a, b])

    def test_matmul_chain(self):
        a, b, c = rand_t(2, 3), rand_t(3, 4), rand_t(4, 2)
        assert gradcheck(lambda x, y, z: (matmul(matmul(x, y), z) ** 2).sum(), [a, b, c])

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            matmul(rand_t(3), rand_t(3))

    def test_matmul_operator(self):
        a, b = rand_t(2, 3), rand_t(3, 2)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_transpose(self):
        a = rand_t(3, 5)
        assert gradcheck(lambda x: (transpose(x) @ x).sum(), [a])

    def test_T_property(self):
        a = rand_t(3, 5)
        assert a.T.shape == (5, 3)

    def test_spmm_gradcheck(self):
        s = sp.random(6, 6, density=0.4, random_state=7, format="csr")
        x = rand_t(6, 3)
        assert gradcheck(lambda t: (spmm(s, t) ** 2).sum(), [x])

    def test_spmm_value_matches_dense(self):
        s = sp.random(5, 5, density=0.5, random_state=3, format="csr")
        x = rand_t(5, 4, requires_grad=False)
        np.testing.assert_allclose(spmm(s, x).data, s.toarray() @ x.data)

    def test_spmm_rejects_dense_first_arg(self):
        with pytest.raises(TypeError):
            spmm(np.eye(3), rand_t(3, 2))

    def test_sparse_rmatmul_dispatch(self):
        s = sp.identity(4, format="csr")
        x = rand_t(4, 2, requires_grad=False)
        y = s @ x.data  # sanity: scipy result
        np.testing.assert_allclose((s @ x.data), y)

    def test_spmm_shape_mismatch_is_clear(self):
        s = sp.identity(3, format="csr")
        with pytest.raises(ValueError, match="shape mismatch"):
            spmm(s, rand_t(4, 2))

    def test_spmm_rejects_non_2d_dense(self):
        s = sp.identity(3, format="csr")
        with pytest.raises(ValueError, match="2-D"):
            spmm(s, Tensor(np.ones(3), requires_grad=True))

    def test_spmm_rejects_non_float64_sparse(self):
        s = sp.identity(3, format="csr", dtype=np.float32)
        with pytest.raises(ValueError, match="float64"):
            spmm(s, rand_t(3, 2))

    def test_spmm_csr_container_gradcheck(self):
        from repro.graphs.csr import CSRMatrix

        s = CSRMatrix.from_scipy(
            sp.random(6, 6, density=0.4, random_state=7, format="csr")
        )
        x = rand_t(6, 3)
        assert gradcheck(lambda t: (spmm(s, t) ** 2).sum(), [x])

    def test_spmm_csr_container_matches_scipy_path_bitwise(self):
        from repro.graphs.csr import CSRMatrix

        s_sp = sp.random(8, 8, density=0.3, random_state=5, format="csr")
        s = CSRMatrix.from_scipy(s_sp)
        x1, x2 = rand_t(8, 4), rand_t(8, 4)
        x2.data[...] = x1.data

        out_sp = spmm(s_sp, x1)
        out_csr = spmm(s, x2)
        assert np.array_equal(out_sp.data, out_csr.data)
        out_sp.sum().backward()
        out_csr.sum().backward()
        assert np.array_equal(x1.grad, x2.grad)

    def test_spmm_csr_container_rmatmul(self):
        from repro.graphs.csr import CSRMatrix

        s = CSRMatrix.from_scipy(sp.identity(4, format="csr"))
        x = rand_t(4, 2, requires_grad=False)
        np.testing.assert_allclose((s @ x).data, x.data)


class TestReductions:
    def test_sum_all(self):
        assert gradcheck(lambda x: tsum(x), [rand_t(3, 4)])

    def test_sum_axis0(self):
        assert gradcheck(lambda x: (tsum(x, axis=0) ** 2).sum(), [rand_t(3, 4)])

    def test_sum_axis1_keepdims(self):
        assert gradcheck(lambda x: (tsum(x, axis=1, keepdims=True) ** 2).sum(), [rand_t(3, 4)])

    def test_mean_all(self):
        assert gradcheck(lambda x: tmean(x), [rand_t(3, 4)])

    def test_mean_axis0(self):
        # Per-feature means over nodes: the E(Z) of Algorithm 1.
        assert gradcheck(lambda x: (tmean(x, axis=0) ** 2).sum(), [rand_t(5, 3)])

    def test_mean_negative_axis(self):
        assert gradcheck(lambda x: (tmean(x, axis=-1) ** 2).sum(), [rand_t(3, 4)])

    def test_max_all(self):
        a = Tensor(RNG.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        assert gradcheck(lambda x: tmax(x), [a])

    def test_max_axis(self):
        a = Tensor(RNG.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        assert gradcheck(lambda x: tmax(x, axis=1).sum(), [a])

    def test_l2_norm(self):
        assert gradcheck(lambda x: l2_norm(x), [rand_t(4, 3)])

    def test_l2_norm_at_zero_no_nan(self):
        z = Tensor(np.zeros((3, 3)), requires_grad=True)
        l2_norm(z).backward()
        assert np.all(np.isfinite(z.grad))

    def test_frobenius_is_l2(self):
        x = rand_t(4, 4, requires_grad=False)
        assert frobenius_norm(x).item() == pytest.approx(np.linalg.norm(x.data), rel=1e-9)


class TestNNOps:
    def test_relu(self):
        assert gradcheck(lambda x: (relu(x) ** 2).sum(), [rand_t(4, 5)])

    def test_leaky_relu(self):
        # Shift away from 0 so finite differences never straddle the kink.
        assert gradcheck(
            lambda x: (leaky_relu(x + 5.0) ** 2).sum() + (leaky_relu(x - 5.0) ** 2).sum(),
            [rand_t(4, 5)],
        )

    def test_leaky_relu_negative_slope(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        leaky_relu(a, negative_slope=0.1).sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_relu_kills_negative_grad(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        relu(a).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0])

    def test_sigmoid(self):
        assert gradcheck(lambda x: sigmoid(x).sum(), [rand_t(4, 5)])

    def test_sigmoid_range(self):
        out = sigmoid(rand_t(10, 10, requires_grad=False)).data
        assert np.all((out > 0) & (out < 1))

    def test_tanh(self):
        assert gradcheck(lambda x: tanh(x).sum(), [rand_t(4, 5)])

    def test_softmax_rows_sum_to_one(self):
        out = softmax(rand_t(6, 4, requires_grad=False)).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(6))

    def test_softmax_grad(self):
        w = Tensor(RNG.standard_normal((4, 5)))
        assert gradcheck(lambda x: (softmax(x) * w).sum(), [rand_t(4, 5)])

    def test_log_softmax_grad(self):
        w = Tensor(RNG.standard_normal((4, 5)))
        assert gradcheck(lambda x: (log_softmax(x) * w).sum(), [rand_t(4, 5)])

    def test_log_softmax_stable_large_logits(self):
        x = Tensor([[1000.0, 0.0], [0.0, 1000.0]])
        out = log_softmax(x).data
        assert np.all(np.isfinite(out))

    def test_log_softmax_equals_log_of_softmax(self):
        x = rand_t(5, 3, requires_grad=False)
        np.testing.assert_allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-12)

    def test_dropout_eval_is_identity(self):
        x = rand_t(10, 10)
        assert dropout(x, 0.5, training=False) is x

    def test_dropout_zero_p_is_identity(self):
        x = rand_t(10, 10)
        assert dropout(x, 0.0) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(Tensor(x.data, requires_grad=True), 0.3, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            dropout(rand_t(3, 3), 1.0)

    def test_dropout_grad_matches_mask(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        out = dropout(x, 0.5, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)  # mask * 1/(1-p)


class TestShapeOps:
    def test_reshape(self):
        assert gradcheck(lambda x: (reshape(x, 2, 6) ** 2).sum(), [rand_t(3, 4)])

    def test_reshape_tuple_arg(self):
        x = rand_t(3, 4, requires_grad=False)
        assert reshape(x, (12,)).shape == (12,)

    def test_getitem_int_array(self):
        idx = np.array([0, 2, 4])
        assert gradcheck(lambda x: (x[idx] ** 2).sum(), [rand_t(5, 3)])

    def test_getitem_repeated_indices_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        idx = np.array([1, 1, 1])
        x[idx].sum().backward()
        np.testing.assert_array_equal(x.grad[1], [3.0, 3.0])

    def test_getitem_bool_mask(self):
        x = rand_t(5, 3)
        mask = np.array([True, False, True, False, True])
        assert gradcheck(lambda t: (t[mask] ** 2).sum(), [x])

    def test_getitem_slice(self):
        assert gradcheck(lambda x: (x[slice(1, 3)] ** 2).sum(), [rand_t(5, 3)])

    def test_concat_axis0(self):
        a, b = rand_t(2, 3), rand_t(4, 3)
        assert gradcheck(lambda x, y: (concat([x, y], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self):
        a, b = rand_t(3, 2), rand_t(3, 4)
        assert gradcheck(lambda x, y: (concat([x, y], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = rand_t(3, 2), rand_t(3, 2)
        assert gradcheck(lambda x, y: (stack([x, y]) ** 2).sum(), [a, b])

    def test_stack_value(self):
        a, b = rand_t(2, 2, requires_grad=False), rand_t(2, 2, requires_grad=False)
        assert stack([a, b]).shape == (2, 2, 2)


class TestGradcheckUtility:
    def test_rejects_nonscalar(self):
        with pytest.raises(ValueError):
            gradcheck(lambda x: x * 2, [rand_t(3)])

    def test_detects_wrong_gradient(self):
        # An intentionally wrong op: forward x^2 but gradient of x^3.
        from repro.autograd.tensor import Tensor as T

        def bad_square(a):
            out_data = a.data**2

            def backward(grad):
                a._accumulate(grad * 3 * a.data**2)

            # Deliberately unpriced op: this test exists to prove gradcheck
            # rejects a wrong gradient, not to extend the cost model.
            return T._make(out_data, (a,), backward, "bad")  # repro-lint: disable=RL015

        with pytest.raises(AssertionError):
            gradcheck(lambda x: bad_square(x).sum(), [rand_t(3)])
