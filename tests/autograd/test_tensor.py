"""Tests for the Tensor type and backward-pass machinery."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, no_grad, is_grad_enabled, zeros, ones, randn


class TestConstruction:
    def test_wraps_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_wraps_int_array_as_float(self):
        t = Tensor(np.arange(4))
        assert t.data.dtype == np.float64

    def test_scalar(self):
        t = Tensor(3.0)
        assert t.shape == ()
        assert t.item() == 3.0

    def test_item_rejects_nonscalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_coerces(self):
        t = as_tensor([1.0, 2.0])
        assert isinstance(t, Tensor)

    def test_zeros_ones_randn(self):
        assert np.all(zeros(2, 3).data == 0)
        assert np.all(ones(2, 3).data == 1)
        r = randn(2, 3, rng=np.random.default_rng(0))
        r2 = randn(2, 3, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(r.data, r2.data)

    def test_len(self):
        assert len(Tensor([[1.0], [2.0], [3.0]])) == 3


class TestBackwardMechanics:
    def test_scalar_backward_default_grad(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x
        y.backward()
        assert x.grad == pytest.approx(4.0)

    def test_nonscalar_backward_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_explicit_grad_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones((3,)))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(3.0, requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        assert x.grad == pytest.approx(4.0)

    def test_zero_grad(self):
        x = Tensor(3.0, requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x  -> dy/dx = 4x
        x = Tensor(3.0, requires_grad=True)
        a = x * x
        b = x * x
        (a + b).backward()
        assert x.grad == pytest.approx(12.0)

    def test_shared_subexpression(self):
        # z = (x+1); loss = z*z -> dL/dx = 2(x+1)
        x = Tensor(2.0, requires_grad=True)
        z = x + 1.0
        (z * z).backward()
        assert x.grad == pytest.approx(6.0)

    def test_deep_chain_no_recursion_error(self):
        # 5000-op chain would overflow a recursive topo sort.
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.0
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_no_grad_blocks_recording(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * x
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * x).detach()
        z = y * 3
        assert not z.requires_grad

    def test_detach_shares_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        assert x.detach().data is x.data

    def test_copy_is_deep(self):
        x = Tensor([1.0, 2.0])
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_grad_of_leaf_only_when_required(self):
        x = Tensor(2.0, requires_grad=True)
        c = Tensor(3.0)  # constant
        (x * c).backward()
        assert c.grad is None
        assert x.grad == pytest.approx(3.0)

    def test_tensor_hash_is_identity(self):
        x = Tensor([1.0])
        y = Tensor([1.0])
        assert x == x
        assert x != y
        assert len({x, y}) == 2
