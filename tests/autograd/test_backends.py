"""Kernel backend dispatch: selection, equivalence, golden digests.

The backend contract is strict bitwise interchangeability — every
backend must accumulate each output row in stored-index order, so the
``numpy`` (scipy) and ``numba`` kernels produce identical float64 bits
and the training digests cannot depend on which backend is active.
Numba legs self-skip when the package is absent (it is optional and
never imported at module load).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import backends, spmm
from repro.autograd.backends import (
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.autograd.tensor import Tensor
from repro.graphs.csr import CSRMatrix


def _have_numba() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


needs_numba = pytest.mark.skipif(not _have_numba(), reason="numba not installed")


@pytest.fixture(autouse=True)
def _restore_backend():
    prev = set_backend(None)
    yield
    set_backend(prev)


def _operand(n=40, density=0.15, seed=0):
    return CSRMatrix.from_scipy(
        sp.random(n, n, density=density, random_state=seed, format="csr")
    )


class TestSelection:
    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_registry_lists_both(self):
        names = available_backends()
        assert "numpy" in names and "numba" in names

    def test_scipy_alias(self):
        with use_backend("scipy") as b:
            assert b.name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("cuda")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "scipy")
        set_backend(None)  # re-arm lazy env resolution
        assert get_backend().name == "numpy"

    def test_env_var_invalid_name_is_loud(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "no-such-backend")
        set_backend(None)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend()

    def test_use_backend_restores_previous(self):
        set_backend("numpy")
        with use_backend("scipy"):
            pass
        assert get_backend().name == "numpy"


class TestNumpyBackend:
    def test_matches_scipy_product_bitwise(self):
        op = _operand()
        x = np.random.default_rng(1).standard_normal((op.shape[1], 7))
        assert np.array_equal(op.matmul(x), op.to_scipy() @ x)


@needs_numba
class TestNumbaBackend:
    def test_forward_bitwise_identical_to_numpy(self):
        op = _operand(n=120, density=0.1, seed=3)
        x = np.random.default_rng(2).standard_normal((op.shape[1], 16))
        with use_backend("numpy"):
            ref = op.matmul(x)
        with use_backend("numba"):
            out = op.matmul(x)
        assert np.array_equal(ref, out)

    def test_backward_bitwise_identical_to_numpy(self):
        op = _operand(n=80, density=0.12, seed=4)
        g = np.random.default_rng(3).standard_normal((op.shape[0], 8))
        with use_backend("numpy"):
            ref = op.rev_matmul(g)
        with use_backend("numba"):
            out = op.rev_matmul(g)
        assert np.array_equal(ref, out)

    def test_spmm_training_step_identical(self):
        op = _operand(n=50, density=0.2, seed=5)
        x_data = np.random.default_rng(4).standard_normal((50, 6))
        grads = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                x = Tensor(x_data.copy(), requires_grad=True)
                (spmm(op, x) ** 2).sum().backward()
                grads[name] = x.grad
        assert np.array_equal(grads["numpy"], grads["numba"])


class TestGoldenDigestPerBackend:
    """The pinned FedOMD trajectory must not depend on the kernel backend."""

    @pytest.mark.parametrize(
        "name",
        ["numpy", pytest.param("numba", marks=needs_numba)],
    )
    def test_golden_digest(self, name):
        from tests.federated.test_golden_history import (
            GOLDEN_DIGEST,
            digest,
            golden_history,
        )

        with use_backend(name):
            assert digest(golden_history()) == GOLDEN_DIGEST
