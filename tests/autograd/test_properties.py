"""Hypothesis property-based tests for autograd invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, matmul, relu, softmax, log_softmax
from repro.autograd.ops_basic import add, mul
from repro.autograd.ops_reduce import sum as tsum, mean as tmean


finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=50, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_add_commutes(a, b):
    np.testing.assert_allclose(add(Tensor(a), Tensor(b)).data, add(Tensor(b), Tensor(a)).data)


@settings(max_examples=50, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)), arrays((3, 4)))
def test_add_associates(a, b, c):
    lhs = add(add(Tensor(a), Tensor(b)), Tensor(c)).data
    rhs = add(Tensor(a), add(Tensor(b), Tensor(c))).data
    np.testing.assert_allclose(lhs, rhs, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(arrays((3, 4)))
def test_sum_grad_is_ones(a):
    t = Tensor(a, requires_grad=True)
    tsum(t).backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(a))


@settings(max_examples=50, deadline=None)
@given(arrays((4, 5)))
def test_mean_grad_is_uniform(a):
    t = Tensor(a, requires_grad=True)
    tmean(t).backward()
    np.testing.assert_allclose(t.grad, np.full_like(a, 1.0 / a.size))


@settings(max_examples=50, deadline=None)
@given(arrays((4, 4)))
def test_relu_idempotent(a):
    t = Tensor(a)
    once = relu(t).data
    twice = relu(relu(t)).data
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=50, deadline=None)
@given(arrays((4, 4)))
def test_relu_nonnegative(a):
    assert np.all(relu(Tensor(a)).data >= 0)


@settings(max_examples=50, deadline=None)
@given(arrays((5, 3)))
def test_softmax_is_distribution(a):
    out = softmax(Tensor(a)).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(5), atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(arrays((5, 3)), st.floats(min_value=-5, max_value=5, allow_nan=False))
def test_softmax_shift_invariant(a, c):
    # softmax(x + c) == softmax(x): the stability property the max-shift uses.
    np.testing.assert_allclose(
        softmax(Tensor(a + c)).data, softmax(Tensor(a)).data, atol=1e-10
    )


@settings(max_examples=50, deadline=None)
@given(arrays((5, 3)))
def test_log_softmax_upper_bound(a):
    assert np.all(log_softmax(Tensor(a)).data <= 1e-12)


@settings(max_examples=30, deadline=None)
@given(arrays((3, 4)), arrays((4, 2)))
def test_matmul_matches_numpy(a, b):
    np.testing.assert_allclose(matmul(Tensor(a), Tensor(b)).data, a @ b, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(arrays((3, 3)), arrays((3, 3)))
def test_linearity_of_grad(a, b):
    # d(sum(x*a) + sum(x*b))/dx == a + b
    x = Tensor(np.ones((3, 3)), requires_grad=True)
    loss = tsum(mul(x, Tensor(a))) + tsum(mul(x, Tensor(b)))
    loss.backward()
    np.testing.assert_allclose(x.grad, a + b, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(arrays((4, 3)))
def test_double_backward_accumulates_exactly_twice(a):
    x = Tensor(a, requires_grad=True)
    tsum(mul(x, x)).backward()
    g1 = x.grad.copy()
    tsum(mul(x, x)).backward()
    np.testing.assert_allclose(x.grad, 2 * g1, atol=1e-12)


# ---- scatter/gather and norms (the GAT edge-softmax building blocks) ----

from repro.autograd import gradcheck
from repro.autograd.ops_reduce import frobenius_norm, l2_norm
from repro.autograd.ops_shape import scatter_add


@settings(max_examples=30, deadline=None)
@given(arrays((6, 3)))
def test_scatter_add_preserves_total(a):
    # Segment sums partition the rows: the grand total is unchanged.
    idx = np.array([0, 1, 0, 2, 1, 0])
    out = scatter_add(Tensor(a), idx, 3)
    np.testing.assert_allclose(out.data.sum(axis=0), a.sum(axis=0), atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(arrays((5, 2)))
def test_scatter_add_gradcheck(a):
    idx = np.array([0, 2, 1, 2, 0])
    t = Tensor(a, requires_grad=True)
    assert gradcheck(lambda x: (scatter_add(x, idx, 3) ** 2).sum(), [t])


@settings(max_examples=30, deadline=None)
@given(arrays((4, 3)))
def test_gather_then_scatter_is_degree_scaling(a):
    # Gathering each row once and scattering back is the identity.
    idx = np.arange(4)
    t = Tensor(a)
    np.testing.assert_allclose(scatter_add(t[idx], idx, 4).data, a, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(arrays((4, 4)), st.floats(min_value=0.1, max_value=5, allow_nan=False))
def test_norm_absolutely_homogeneous(a, c):
    # ‖c·A‖ = |c|·‖A‖ up to the eps regularizer at the origin.
    n1 = l2_norm(Tensor(a)).item()
    nc = l2_norm(Tensor(c * a)).item()
    np.testing.assert_allclose(nc, c * n1, rtol=1e-7, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(arrays((4, 4)), arrays((4, 4)))
def test_norm_triangle_inequality(a, b):
    assert (
        frobenius_norm(Tensor(a + b)).item()
        <= frobenius_norm(Tensor(a)).item() + frobenius_norm(Tensor(b)).item() + 1e-9
    )
