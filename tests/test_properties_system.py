"""Hypothesis property tests on system-level invariants.

Complements tests/autograd/test_properties.py (op algebra) with
higher-level invariants: FedAvg affine properties, partition coverage,
CMD pseudo-metric behaviour, and moment-exchange exactness under
arbitrary party splits.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.cmd import cmd_distance_arrays
from repro.core.exchange import MomentExchange, pooled_central_moments
from repro.federated import Communicator, fedavg
from repro.federated.server import weighted_mean_statistics

finite = st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False)


def state_arrays(shape=(3, 2)):
    return hnp.arrays(np.float64, shape, elements=finite)


@settings(max_examples=40, deadline=None)
@given(state_arrays(), state_arrays())
def test_fedavg_between_extremes(a, b):
    # Every coordinate of the average lies between the two inputs.
    out = fedavg([{"w": a}, {"w": b}])["w"]
    lo, hi = np.minimum(a, b), np.maximum(a, b)
    assert np.all(out >= lo - 1e-12) and np.all(out <= hi + 1e-12)


@settings(max_examples=40, deadline=None)
@given(state_arrays(), state_arrays(), st.floats(min_value=0.01, max_value=0.99))
def test_fedavg_weighted_interpolates(a, b, lam):
    out = fedavg([{"w": a}, {"w": b}], weights=[lam, 1 - lam])["w"]
    np.testing.assert_allclose(out, lam * a + (1 - lam) * b, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(state_arrays())
def test_fedavg_idempotent(a):
    out = fedavg([{"w": a}] * 4, weights=[1, 2, 3, 4])["w"]
    np.testing.assert_allclose(out, a, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(state_arrays(shape=(4,)), st.integers(min_value=1, max_value=50)),
        min_size=1,
        max_size=5,
    )
)
def test_weighted_mean_bounded(pairs):
    values = [v for v, _ in pairs]
    counts = [c for _, c in pairs]
    out = weighted_mean_statistics(values, counts)
    stacked = np.stack(values)
    assert np.all(out >= stacked.min(axis=0) - 1e-12)
    assert np.all(out <= stacked.max(axis=0) + 1e-12)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=5),
    st.randoms(use_true_random=False),
)
def test_exchange_matches_pooled_for_random_splits(num_clients, dim, pyrandom):
    rng = np.random.default_rng(pyrandom.randint(0, 10_000))
    hidden = [
        [rng.standard_normal((rng.integers(3, 20), dim))] for _ in range(num_clients)
    ]
    counts = [h[0].shape[0] for h in hidden]
    got = MomentExchange(Communicator(num_clients=num_clients)).run(hidden, counts)
    want = pooled_central_moments(hidden)
    np.testing.assert_allclose(got.means[0], want.means[0], atol=1e-10)
    for oi in range(4):
        np.testing.assert_allclose(got.moments[0][oi], want.moments[0][oi], atol=1e-9)


samples = hnp.arrays(
    np.float64, (12, 3), elements=st.floats(min_value=-2, max_value=2, allow_nan=False)
)


@settings(max_examples=40, deadline=None)
@given(samples)
def test_cmd_self_distance_zero(z):
    assert cmd_distance_arrays(z, z.copy()) <= 1e-10


@settings(max_examples=40, deadline=None)
@given(samples, samples)
def test_cmd_symmetric(z1, z2):
    d12 = cmd_distance_arrays(z1, z2)
    d21 = cmd_distance_arrays(z2, z1)
    assert d12 == d21


@settings(max_examples=40, deadline=None)
@given(samples, samples)
def test_cmd_nonnegative(z1, z2):
    assert cmd_distance_arrays(z1, z2) >= 0


@settings(max_examples=40, deadline=None)
@given(samples, st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
def test_cmd_translation_moves_only_first_order(z, shift):
    # Shifting one sample changes CMD by exactly the mean term: higher
    # central moments are translation-invariant.
    base = cmd_distance_arrays(z, z.copy())
    shifted = cmd_distance_arrays(z, z + shift)
    expected_mean_term = np.linalg.norm(np.full(z.shape[1], shift))
    assert shifted == np.float64(base) + np.float64(0) or abs(
        shifted - expected_mean_term
    ) < 1e-8 + base


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.randoms(use_true_random=False))
def test_partition_is_exact_cover(num_parties, pyrandom):
    from repro.graphs import load_dataset, random_partition

    g = load_dataset("cora", seed=0, scale=0.1)
    rng = np.random.default_rng(pyrandom.randint(0, 10_000))
    pr = random_partition(g, num_parties, rng)
    all_nodes = np.concatenate(pr.node_maps)
    assert len(all_nodes) == g.num_nodes
    assert len(np.unique(all_nodes)) == g.num_nodes
    assert sum(pr.sizes()) == g.num_nodes
