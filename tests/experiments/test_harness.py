"""Tests for the experiment harness (registry, runner, CLI plumbing).

Heavy experiment *content* runs in benchmarks/; here we test mechanics
on minimal slices so the suite stays fast.
"""

import numpy as np
import pytest

from repro.experiments import (
    MODEL_NAMES,
    MODE_PARAMS,
    ExperimentResult,
    REGISTRY,
    get_experiment,
    make_trainer,
    run_cell,
)
from repro.experiments.configs import paper_resolution
from repro.experiments.runner import ModeParams
from repro.graphs import load_dataset, louvain_partition

TINY = ModeParams(scale=0.1, max_rounds=3, patience=10, seeds=1, hidden=8)


class TestRegistry:
    def test_all_tables_and_figures_registered(self):
        expected = {
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
        }
        assert expected <= set(REGISTRY)

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_double_registration_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(KeyError):
            register("table2")(lambda: None)


class TestModeParams:
    def test_three_modes(self):
        assert set(MODE_PARAMS) == {"smoke", "quick", "full"}

    def test_full_is_paper_scale(self):
        assert MODE_PARAMS["full"].scale == 1.0
        assert MODE_PARAMS["full"].max_rounds == 1000
        assert MODE_PARAMS["full"].patience == 200
        assert MODE_PARAMS["full"].seeds == 5

    def test_modes_ordered_by_cost(self):
        assert MODE_PARAMS["smoke"].scale < MODE_PARAMS["quick"].scale < 1.0


class TestMakeTrainer:
    @pytest.fixture(scope="class")
    def parts(self):
        g = load_dataset("cora", seed=0, scale=0.1)
        return louvain_partition(g, 3, np.random.default_rng(0)).parts

    def test_every_model_name_constructs(self, parts):
        for name in MODEL_NAMES:
            tr = make_trainer(name, parts, TINY, seed=0)
            assert tr.name in (name, "fedavg")

    def test_fedomd_overrides(self, parts):
        tr = make_trainer(
            "fedomd", parts, TINY, seed=0, fedomd_overrides=dict(num_hidden=3, beta=0.5)
        )
        assert tr.omd_config.num_hidden == 3
        assert tr.omd_config.beta == 0.5

    def test_unknown_model(self, parts):
        with pytest.raises(KeyError):
            make_trainer("fedfoo", parts, TINY, seed=0)


class TestRunCell:
    def test_returns_mean_std_time(self):
        mean, std, secs = run_cell("fedgcn", "cora", 3, TINY, seeds=[0])
        assert 0 <= mean <= 1
        assert std == 0.0  # single seed
        assert secs > 0

    def test_multi_seed_averages(self):
        mean, std, _ = run_cell("fedmlp", "cora", 3, TINY, seeds=[0, 1])
        assert 0 <= mean <= 1
        assert std >= 0

    def test_partition_cache_hit(self):
        cache = {}
        run_cell("fedmlp", "cora", 3, TINY, seeds=[0], partition_cache=cache)
        assert len(cache) == 1
        # Second model reuses the cached cut (same key).
        run_cell("locgcn", "cora", 3, TINY, seeds=[0], partition_cache=cache)
        assert len(cache) == 1


class TestExperimentResult:
    def test_add_render_save(self, tmp_path):
        res = ExperimentResult(name="t", headers=["a", "b"], meta={"mode": "x"})
        res.add(1, 2)
        out = res.render()
        assert "== t ==" in out and "mode=x" in out
        path = res.save(str(tmp_path))
        from repro.reporting import read_csv

        assert read_csv(path)["a"] == ["1"]


class TestConfigs:
    def test_paper_resolutions(self):
        assert paper_resolution("cora") == 1.0
        assert paper_resolution("computer") == 20.0
        assert paper_resolution("unknown-ds") == 1.0


class TestSmokeExperimentsEndToEnd:
    """Cheapest registered experiments run end-to-end."""

    def test_table2(self, tmp_path):
        res = get_experiment("table2")(mode="smoke", out_dir=str(tmp_path))
        assert len(res.rows) == 5
        assert (tmp_path / "table2.csv").exists()

    def test_fig4_single_dataset(self, tmp_path):
        res = get_experiment("fig4")(
            mode="smoke", out_dir=str(tmp_path), datasets=["cora"], num_parties=3
        )
        assert len(res.rows) == 3
        js_louvain = float(res.rows[0][3])
        js_random = float(res.rows[0][4])
        assert js_louvain > js_random
