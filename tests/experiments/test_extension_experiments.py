"""Smoke tests for the beyond-the-paper experiment runners."""

import pytest

from repro.experiments import REGISTRY, get_experiment


class TestRegistration:
    @pytest.mark.parametrize(
        "name", ["ext_backbones", "ext_privacy", "ext_partitioners", "ext_serveropt"]
    )
    def test_registered(self, name):
        assert name in REGISTRY


class TestExtPrivacy:
    def test_runs_and_orders_epsilon(self, tmp_path):
        res = get_experiment("ext_privacy")(
            mode="smoke", out_dir=str(tmp_path), sigmas=(0.0, 1.0)
        )
        assert len(res.rows) == 2
        sigma0, sigma1 = res.rows
        assert sigma0[1] == "∞"  # no noise → no privacy guarantee
        assert float(sigma1[1]) > 0
        assert (tmp_path / "ext_privacy.csv").exists()


class TestExtServerOpt:
    def test_runs_all_optimizers(self, tmp_path):
        res = get_experiment("ext_serveropt")(mode="smoke", out_dir=str(tmp_path))
        names = [r[0] for r in res.rows]
        assert names == ["fedavg", "fedavgm", "fedadam", "fedyogi"]
        for r in res.rows:
            assert 0.0 <= float(r[1]) <= 1.0


class TestExtPartitioners:
    def test_louvain_most_noniid(self, tmp_path):
        res = get_experiment("ext_partitioners")(mode="smoke", out_dir=str(tmp_path))
        js = {r[0]: float(r[1]) for r in res.rows}
        assert js["louvain"] > js["random"]
        # BFS sits between the two extremes (or at least above random).
        assert js["bfs"] >= js["random"]
