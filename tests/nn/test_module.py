"""Tests for Module/Parameter registration and state_dict round-trips."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, Parameter


class TwoLayer(Module):
    def __init__(self, rng=None):
        super().__init__()
        gen = rng or np.random.default_rng(0)
        self.fc1 = Linear(4, 8, rng=gen)
        self.fc2 = Linear(8, 3, rng=gen)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_found(self):
        m = TwoLayer()
        names = [n for n, _ in m.named_parameters()]
        assert "scale" in names
        assert "fc1.weight" in names and "fc1.bias" in names
        assert "fc2.weight" in names and "fc2.bias" in names

    def test_parameter_count(self):
        m = TwoLayer()
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3 + 1

    def test_deterministic_order(self):
        a = [n for n, _ in TwoLayer().named_parameters()]
        b = [n for n, _ in TwoLayer().named_parameters()]
        assert a == b

    def test_add_module(self):
        m = Module()
        lin = m.add_module("lin0", Linear(2, 2, rng=np.random.default_rng(0)))
        assert lin is m.lin0
        assert any(n.startswith("lin0.") for n, _ in m.named_parameters())

    def test_modules_iterates_tree(self):
        m = TwoLayer()
        assert len(list(m.modules())) == 3  # self + fc1 + fc2

    def test_nested_modules(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = TwoLayer()

        names = [n for n, _ in Outer().named_parameters()]
        assert "inner.fc1.weight" in names


class TestStateDict:
    def test_round_trip(self):
        m1 = TwoLayer(np.random.default_rng(1))
        m2 = TwoLayer(np.random.default_rng(2))
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_copy(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["scale"][0] = 99.0
        assert m.scale.data[0] == 1.0

    def test_load_copies_not_aliases(self):
        m = TwoLayer()
        sd = m.state_dict()
        m.load_state_dict(sd)
        sd["scale"][0] = 42.0
        assert m.scale.data[0] == 1.0

    def test_strict_missing_key(self):
        m = TwoLayer()
        sd = m.state_dict()
        del sd["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_strict_unexpected_key(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_non_strict_partial_load(self):
        m = TwoLayer()
        before = m.fc1.weight.data.copy()
        m.load_state_dict({"scale": np.array([5.0])}, strict=False)
        assert m.scale.data[0] == 5.0
        np.testing.assert_array_equal(m.fc1.weight.data, before)

    def test_shape_mismatch_rejected(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["scale"] = np.zeros(2)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)


class TestTrainEval:
    def test_train_eval_recursive(self):
        m = TwoLayer()
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.fc2.training


class TestGradients:
    def test_zero_grad(self):
        m = TwoLayer()
        x = Tensor(np.random.default_rng(0).standard_normal((5, 4)))
        m(x).sum().backward()
        assert m.fc1.weight.grad is not None
        m.zero_grad()
        assert m.fc1.weight.grad is None

    def test_grad_dict_zeros_for_unused(self):
        m = TwoLayer()
        gd = m.grad_dict()
        assert set(gd) == set(m.state_dict())
        assert all(np.all(v == 0) for v in gd.values())

    def test_forward_backward_updates_all(self):
        m = TwoLayer()
        x = Tensor(np.random.default_rng(3).standard_normal((6, 4)))
        (m(x) ** 2).sum().backward()
        gd = m.grad_dict()
        # relu may zero some fc1 grads but not all of them
        assert any(np.abs(v).sum() > 0 for v in gd.values())
        assert np.abs(gd["fc2.weight"]).sum() > 0


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(4, 7, rng=np.random.default_rng(0))
        out = lin(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        lin = Linear(4, 7, bias=False, rng=np.random.default_rng(0))
        assert lin.bias is None
        assert lin.num_parameters() == 28

    def test_bias_starts_zero(self):
        lin = Linear(4, 7, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(lin.bias.data, np.zeros(7))

    def test_seeded_reproducible(self):
        a = Linear(5, 5, rng=np.random.default_rng(42))
        b = Linear(5, 5, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_init_selection(self):
        lin = Linear(4, 4, init="orthogonal", rng=np.random.default_rng(0))
        w = lin.weight.data
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)
