"""Tests for losses, metrics, initializers and optimizers."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import (
    Adam,
    Linear,
    SGD,
    accuracy,
    cross_entropy,
    init,
    mse_loss,
    nll_loss,
    orthogonality_loss,
)
from repro.nn.losses import macro_f1

RNG = np.random.default_rng(7)


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor([[2.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        labels = np.array([0, 1])
        expected = -np.mean(
            [
                2.0 - np.log(np.exp(2) + 2),
                3.0 - np.log(np.exp(3) + 2),
            ]
        )
        assert cross_entropy(logits, labels).item() == pytest.approx(expected, rel=1e-9)

    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((4, 5)))
        labels = np.array([0, 1, 2, 3])
        assert cross_entropy(logits, labels).item() == pytest.approx(np.log(5))

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((5, 4)), requires_grad=True)
        labels = RNG.integers(0, 4, 5)
        assert gradcheck(lambda z: cross_entropy(z, labels), [logits])

    def test_bool_mask(self):
        logits = Tensor(RNG.standard_normal((6, 3)), requires_grad=True)
        labels = RNG.integers(0, 3, 6)
        mask = np.array([True, False, True, False, False, True])
        assert gradcheck(lambda z: cross_entropy(z, labels, mask), [logits])

    def test_int_mask(self):
        logits = Tensor(RNG.standard_normal((6, 3)))
        labels = RNG.integers(0, 3, 6)
        full = cross_entropy(logits, labels, np.arange(6)).item()
        assert full == pytest.approx(cross_entropy(logits, labels).item())

    def test_mask_changes_value(self):
        logits = Tensor(RNG.standard_normal((6, 3)))
        labels = RNG.integers(0, 3, 6)
        a = cross_entropy(logits, labels, np.array([0, 1])).item()
        b = cross_entropy(logits, labels, np.array([4, 5])).item()
        assert a != pytest.approx(b)

    def test_empty_mask_rejected(self):
        logits = Tensor(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.zeros(3, dtype=int), np.zeros(3, dtype=bool))

    def test_nll_consistency(self):
        from repro.autograd import log_softmax

        logits = Tensor(RNG.standard_normal((5, 4)))
        labels = RNG.integers(0, 4, 5)
        ce = cross_entropy(logits, labels).item()
        nll = nll_loss(log_softmax(logits), labels).item()
        assert ce == pytest.approx(nll, rel=1e-10)


class TestOrthoLoss:
    def test_zero_for_orthogonal(self):
        q = init.orthogonal(6, 6, RNG)
        assert orthogonality_loss([Tensor(q)]).item() == pytest.approx(0.0, abs=1e-5)

    def test_positive_for_nonorthogonal(self):
        w = Tensor(np.ones((4, 4)))
        assert orthogonality_loss([w]).item() > 1.0

    def test_sums_over_layers(self):
        w = Tensor(2 * np.eye(3))
        single = orthogonality_loss([w]).item()
        double = orthogonality_loss([w, w]).item()
        assert double == pytest.approx(2 * single)

    def test_gradcheck(self):
        w = Tensor(RNG.standard_normal((4, 4)), requires_grad=True)
        assert gradcheck(lambda t: orthogonality_loss([t]), [w])

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            orthogonality_loss([Tensor(np.ones((3, 4)))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            orthogonality_loss([])

    def test_gradient_descent_orthogonalizes(self):
        # Minimizing Eq. 6 should drive W toward the orthogonal manifold.
        from repro.nn.module import Parameter

        w = Parameter(np.eye(5) + 0.3 * RNG.standard_normal((5, 5)))
        start = orthogonality_loss([w]).item()
        opt = Adam([w], lr=0.01)
        for _ in range(500):
            opt.zero_grad()
            orthogonality_loss([w]).backward()
            opt.step()
        end = orthogonality_loss([w]).item()
        assert end < 0.1 * start


class TestMetrics:
    def test_accuracy_perfect(self):
        logits = np.eye(4) * 5
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_accuracy_with_mask(self):
        logits = np.array([[5.0, 0], [0, 5.0], [5.0, 0]])
        labels = np.array([0, 0, 0])
        assert accuracy(logits, labels, np.array([True, True, False])) == 0.5

    def test_accuracy_empty_mask_nan(self):
        assert np.isnan(accuracy(np.zeros((2, 2)), np.zeros(2, dtype=int), np.zeros(2, dtype=bool)))

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.eye(3))
        assert accuracy(logits, np.arange(3)) == 1.0

    def test_macro_f1_perfect(self):
        logits = np.eye(3) * 2
        assert macro_f1(logits, np.arange(3)) == 1.0

    def test_macro_f1_weights_classes_equally(self):
        # 9 correct class-0, 1 wrong class-1: accuracy .9, macro-F1 lower.
        logits = np.zeros((10, 2))
        logits[:, 0] = 1.0
        labels = np.array([0] * 9 + [1])
        assert macro_f1(logits, labels) < accuracy(logits, labels)

    def test_mse(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0, 2.0]])
        assert mse_loss(a, b).item() == pytest.approx(2.0)


class TestInitializers:
    @pytest.mark.parametrize("name", ["xavier_uniform", "xavier_normal", "he_normal", "he_uniform"])
    def test_shapes_and_scale(self, name):
        w = init.get(name)(100, 50, np.random.default_rng(0))
        assert w.shape == (100, 50)
        assert 0 < np.abs(w).mean() < 1

    def test_xavier_normal_variance(self):
        w = init.xavier_normal(400, 400, np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2 / 800), rel=0.1)

    def test_he_variance(self):
        w = init.he_normal(500, 100, np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2 / 500), rel=0.1)

    def test_orthogonal_square(self):
        q = init.orthogonal(8, 8, np.random.default_rng(0))
        np.testing.assert_allclose(q @ q.T, np.eye(8), atol=1e-10)

    def test_orthogonal_rectangular_semiorthogonal(self):
        q = init.orthogonal(4, 8, np.random.default_rng(0))
        np.testing.assert_allclose(q @ q.T, np.eye(4), atol=1e-10)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            init.get("nope")


def quadratic_params(n=4, seed=0):
    from repro.nn.module import Parameter

    rng = np.random.default_rng(seed)
    return Parameter(rng.standard_normal(n) + 3.0)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_params(seed=1)
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            return np.abs(p.data).max()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = quadratic_params(seed=2)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        start = np.abs(p.data).sum()
        opt.step()  # no gradient: pure decay
        assert np.abs(p.data).sum() < start

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_params()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_params()], lr=0.1, momentum=1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_params(seed=3)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((64, 3)))
        true_w = rng.standard_normal((3, 1))
        y = Tensor(x.data @ true_w)
        lin = Linear(3, 1, rng=rng)
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            mse_loss(lin(x), y).backward()
            opt.step()
        np.testing.assert_allclose(lin.weight.data, true_w, atol=0.05)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_params()], betas=(1.0, 0.9))

    def test_reset_state(self):
        p = quadratic_params(seed=4)
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        opt.reset_state()
        assert opt.t == 0
        assert all(np.all(m == 0) for m in opt._m)

    def test_step_without_grad_is_safe(self):
        p = quadratic_params(seed=5)
        before = p.data.copy()
        Adam([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, before)
