"""Tests for npz model checkpointing."""

import numpy as np
import pytest

from repro.gnn import GCN, OrthoGCN
from repro.nn.serialize import load_checkpoint, load_state, save_checkpoint, save_state


def make_model(seed=0):
    return GCN(6, 3, hidden=8, rng=np.random.default_rng(seed))


class TestStateRoundTrip:
    def test_save_load(self, tmp_path):
        m1, m2 = make_model(1), make_model(2)
        path = str(tmp_path / "m.npz")
        save_state(m1, path)
        load_state(m2, path)
        for (_, a), (_, b) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_extension_added(self, tmp_path):
        m = make_model()
        out = save_state(m, str(tmp_path / "noext"))
        assert out.endswith(".npz")
        load_state(make_model(3), str(tmp_path / "noext"))

    def test_strict_mismatch(self, tmp_path):
        m = make_model()
        path = str(tmp_path / "m.npz")
        save_state(m, path)
        other = OrthoGCN(6, 3, hidden=8, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            load_state(other, path)

    def test_nonstrict_partial(self, tmp_path):
        m = make_model()
        path = str(tmp_path / "m.npz")
        save_state(m, path)
        other = OrthoGCN(6, 3, hidden=8, rng=np.random.default_rng(0))
        load_state(other, path, strict=False)  # loads the shared conv keys
        # Unmatched ortho weights untouched, shared names equal where shapes agree.


class TestCheckpoint:
    def test_metadata_round_trip(self, tmp_path):
        m = make_model()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(m, path, {"round": 7, "acc": 0.81, "tag": "best"})
        _, meta = load_checkpoint(make_model(9), path)
        assert meta == {"round": 7, "acc": 0.81, "tag": "best"}

    def test_empty_metadata(self, tmp_path):
        m = make_model()
        path = str(tmp_path / "ck.npz")
        save_checkpoint(m, path)
        _, meta = load_checkpoint(make_model(9), path)
        assert meta == {}

    def test_state_restored_with_metadata(self, tmp_path):
        m1 = make_model(4)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(m1, path, {"x": 1})
        m2, _ = load_checkpoint(make_model(5), path)
        np.testing.assert_array_equal(m1.conv1.weight.data, m2.conv1.weight.data)


class TestTrainCLI:
    def test_smoke_run(self, tmp_path, capsys):
        from repro.train import main

        rc = main(
            [
                "--model", "fedgcn", "--dataset", "cora", "--parties", "3",
                "--rounds", "3", "--patience", "5", "--hidden", "8",
                "--scale", "0.1", "--curve",
                "--save-model", str(tmp_path / "model.npz"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert (tmp_path / "model.npz").exists()

    def test_fedomd_overrides(self, capsys):
        from repro.train import main

        rc = main(
            [
                "--model", "fedomd", "--dataset", "cora", "--parties", "3",
                "--rounds", "2", "--patience", "5", "--hidden", "8",
                "--scale", "0.1", "--beta", "0.5", "--num-hidden", "3",
            ]
        )
        assert rc == 0

    def test_rejects_unknown_model(self):
        from repro.train import main

        with pytest.raises(SystemExit):
            main(["--model", "nope"])
