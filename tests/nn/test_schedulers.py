"""Tests for LR schedulers and gradient clipping."""

import math

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    Adam,
    CosineAnnealingLR,
    SGD,
    StepLR,
    WarmupLR,
    clip_grad_norm,
)
from repro.nn.module import Parameter


def make_opt(lr=0.1):
    return SGD([Parameter(np.ones(3))], lr=lr)


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = make_opt(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.1, 0.05, 0.05, 0.025])

    def test_gamma_one_constant(self):
        opt = make_opt(0.1)
        sched = StepLR(opt, step_size=1, gamma=1.0)
        for _ in range(5):
            assert sched.step() == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=1, gamma=0.0)


class TestCosine:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        mid = [sched.step() for _ in range(5)][-1]
        end = [sched.step() for _ in range(5)][-1]
        assert end == pytest.approx(0.1, abs=1e-9)
        assert 0.1 < mid < 1.0

    def test_monotone_decreasing(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_t_max(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=3)
        for _ in range(3):
            sched.step()
        assert sched.step() == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_opt(), t_max=0)


class TestWarmup:
    def test_linear_ramp(self):
        opt = make_opt(0.2)
        sched = WarmupLR(opt, warmup_steps=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == pytest.approx([0.05, 0.1, 0.15, 0.2, 0.2, 0.2])

    def test_mutates_optimizer(self):
        opt = make_opt(0.2)
        WarmupLR(opt, warmup_steps=2).step()
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupLR(make_opt(), warmup_steps=0)


class TestClipGradNorm:
    def test_returns_preclip_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 3.0)  # norm = 6
        assert clip_grad_norm([p], 100.0) == pytest.approx(6.0)
        np.testing.assert_array_equal(p.grad, np.full(4, 3.0))  # below cap: untouched

    def test_clips_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 3.0)
        clip_grad_norm([p], 1.0)
        assert math.sqrt(float((p.grad**2).sum())) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])  # global norm 5
        clip_grad_norm([a, b], 1.0)
        # Scaled jointly: direction preserved.
        assert a.grad[0] / b.grad[0] == pytest.approx(0.75)

    def test_skips_gradless(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)

    def test_with_training_step(self):
        # Clipping integrates with a real backward pass.
        p = Parameter(np.array([10.0]))
        (p * p).sum().backward()
        norm = clip_grad_norm([p], 5.0)
        assert norm == pytest.approx(20.0)
        Adam([p], lr=0.1).step()
        assert np.isfinite(p.data).all()
