"""Tests for the timing utilities."""

import threading
import time

import pytest

from repro.utils import Timer, profile_sections


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t("a"):
            time.sleep(0.01)
        with t("a"):
            time.sleep(0.01)
        assert t.total("a") >= 0.02
        assert t.count("a") == 2

    def test_mean(self):
        t = Timer()
        with t("x"):
            pass
        with t("x"):
            pass
        assert t.mean("x") == pytest.approx(t.total("x") / 2)

    def test_mean_of_unknown_is_zero(self):
        assert Timer().mean("ghost") == 0.0

    def test_labels_sorted(self):
        t = Timer()
        with t("b"):
            pass
        with t("a"):
            pass
        assert t.labels() == ["a", "b"]

    def test_requires_label(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                pass

    def test_reset(self):
        t = Timer()
        with t("a"):
            pass
        t.reset()
        assert t.labels() == []

    def test_exception_still_recorded(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t("boom"):
                raise ValueError
        assert t.count("boom") == 1

    def test_nested_sections_do_not_corrupt(self):
        # The old single-slot implementation attributed the outer
        # section's time to the inner label; nesting must keep both.
        t = Timer()
        with t("outer"):
            with t("inner"):
                time.sleep(0.01)
            time.sleep(0.01)
        assert t.count("outer") == 1 and t.count("inner") == 1
        assert t.total("inner") >= 0.01
        assert t.total("outer") >= t.total("inner") + 0.01

    def test_deep_nesting_same_label(self):
        t = Timer()
        with t("a"):
            with t("a"):
                with t("a"):
                    pass
        assert t.count("a") == 3

    def test_concurrent_threads(self):
        t = Timer()
        n_threads, n_iters = 8, 50

        def work(i):
            for _ in range(n_iters):
                with t(f"thread{i}"):
                    pass
                with t("shared"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.count("shared") == n_threads * n_iters
        for i in range(n_threads):
            assert t.count(f"thread{i}") == n_iters


class TestProfileSections:
    def test_renders_table(self):
        t = Timer()
        with t("fast"):
            pass
        with t("slow"):
            time.sleep(0.01)
        out = profile_sections(t)
        assert "fast" in out and "slow" in out
        # Sorted by total time: slow first.
        assert out.index("slow") < out.index("fast")
