"""Tests for ASCII tables, CSV round-trips, and sparklines."""

import numpy as np
import pytest

from repro.reporting import (
    ascii_table,
    format_acc,
    read_csv,
    render_series,
    sparkline,
    write_csv,
)


class TestFormatAcc:
    def test_paper_style(self):
        assert format_acc(0.5435, 0.0586) == "54.35 (±5.86)"

    def test_no_std(self):
        assert format_acc(0.5) == "50.00"

    def test_bold(self):
        assert format_acc(0.5, bold=True) == "*50.00*"


class TestAsciiTable:
    def test_contains_all_cells(self):
        out = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        for cell in ["a", "bb", "1", "2", "333", "4"]:
            assert cell in out

    def test_title(self):
        out = ascii_table(["x"], [["1"]], title="Hello")
        assert out.splitlines()[0] == "Hello"

    def test_alignment_consistent_width(self):
        out = ascii_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_non_string_cells(self):
        out = ascii_table(["n"], [[42]])
        assert "42" in out


class TestCSV:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "sub" / "t.csv")
        write_csv(path, ["a", "b"], [[1, "x"], [2, "y"]])
        cols = read_csv(path)
        assert cols["a"] == ["1", "2"]
        assert cols["b"] == ["x", "y"]

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "f.csv")
        assert write_csv(path, ["h"], [["v"]]) == path

    def test_row_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "x.csv"), ["a", "b"], [[1]])

    def test_empty_rows_ok(self, tmp_path):
        path = str(tmp_path / "e.csv")
        write_csv(path, ["a"], [])
        assert read_csv(path) == {"a": []}


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(s) == 3

    def test_nan_renders_space(self):
        s = sparkline([0.0, float("nan"), 1.0])
        assert s[1] == " "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_render_series_downsamples(self):
        out = render_series("acc", range(500), np.linspace(0, 1, 500), width=40)
        assert "acc" in out
        assert "[0.000..1.000]" in out
