"""Tests for the raw Planetoid-format loader (offline real-data path)."""

import numpy as np
import pytest

from repro.graphs.planetoid import load_planetoid, write_planetoid_fixture


@pytest.fixture()
def fixture_dir(tmp_path):
    return write_planetoid_fixture(str(tmp_path), name="tiny", rng=np.random.default_rng(0))


class TestLoadPlanetoid:
    def test_basic_shape(self, fixture_dir):
        g = load_planetoid(fixture_dir, "tiny")
        assert g.num_nodes == 40
        assert g.num_features == 12
        assert g.num_classes == 3
        g.validate()

    def test_features_reordered_by_test_index(self, tmp_path):
        # Shuffled vs unshuffled test.index must load identical features
        # for the same underlying nodes.
        rng = lambda: np.random.default_rng(5)
        a = write_planetoid_fixture(str(tmp_path / "a"), rng=rng(), shuffle_test=True)
        b = write_planetoid_fixture(str(tmp_path / "b"), rng=rng(), shuffle_test=False)
        ga = load_planetoid(a, "tiny")
        gb = load_planetoid(b, "tiny")
        np.testing.assert_array_equal(ga.x, gb.x)
        np.testing.assert_array_equal(ga.y, gb.y)

    def test_adjacency_symmetric_no_selfloops(self, fixture_dir):
        g = load_planetoid(fixture_dir, "tiny")
        assert abs(g.adj - g.adj.T).sum() == 0
        assert g.adj.diagonal().sum() == 0

    def test_ring_edges_present(self, fixture_dir):
        g = load_planetoid(fixture_dir, "tiny")
        for i in range(g.num_nodes):
            assert g.adj[i, (i + 1) % g.num_nodes] == 1.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_planetoid(str(tmp_path), "nothere")

    def test_pipeline_compatible(self, fixture_dir):
        # The loaded graph runs through split → partition → training.
        from repro.federated import FederatedTrainer, TrainerConfig
        from repro.graphs import louvain_partition, semi_supervised_split

        g = load_planetoid(fixture_dir, "tiny")
        semi_supervised_split(g, np.random.default_rng(0), train_ratio=0.2)
        parts = louvain_partition(g, 2, np.random.default_rng(0)).parts
        hist = FederatedTrainer(
            parts, TrainerConfig(max_rounds=2, patience=5, hidden=8), seed=0
        ).run()
        assert len(hist) == 2
