"""Tests for the DC-SBM, feature generator, and dataset twins."""

import numpy as np
import pytest

from repro.graphs import (
    DATASET_STATS,
    class_conditional_features,
    dc_sbm,
    load_dataset,
    synthetic_citation_graph,
)
from repro.graphs.features import feature_sparsity
from repro.graphs.sbm import edge_homophily
from repro.graphs.splits import semi_supervised_split, split_sizes


class TestDCSBM:
    def test_shapes_and_labels(self):
        adj, labels = dc_sbm(np.array([30, 30, 40]), 0.2, 0.01, np.random.default_rng(0))
        assert adj.shape == (100, 100)
        np.testing.assert_array_equal(np.bincount(labels), [30, 30, 40])

    def test_symmetric_no_self_loops(self):
        adj, _ = dc_sbm(np.array([50, 50]), 0.1, 0.01, np.random.default_rng(1))
        assert abs(adj - adj.T).sum() == 0
        assert adj.diagonal().sum() == 0

    def test_binary_entries(self):
        adj, _ = dc_sbm(np.array([40, 40]), 0.3, 0.05, np.random.default_rng(2))
        assert set(np.unique(adj.data)) <= {1.0}

    def test_homophily_when_p_in_dominates(self):
        adj, labels = dc_sbm(np.array([60, 60, 60]), 0.2, 0.005, np.random.default_rng(3))
        assert edge_homophily(adj, labels) > 0.7

    def test_no_homophily_when_equal(self):
        adj, labels = dc_sbm(
            np.array([60, 60]), 0.05, 0.05, np.random.default_rng(4), degree_exponent=None
        )
        # Two equal blocks, equal probs: ~half edges intra.
        assert 0.3 < edge_homophily(adj, labels) < 0.7

    def test_degree_correction_adds_tail(self):
        rng = np.random.default_rng(5)
        adj_dc, _ = dc_sbm(np.array([300]), 0.05, 0.0, rng, degree_exponent=2.2)
        adj_flat, _ = dc_sbm(np.array([300]), 0.05, 0.0, np.random.default_rng(5), degree_exponent=None)
        deg_dc = np.asarray(adj_dc.sum(axis=1)).ravel()
        deg_flat = np.asarray(adj_flat.sum(axis=1)).ravel()
        assert deg_dc.std() > deg_flat.std()

    def test_zero_p_out_disconnects_blocks(self):
        adj, labels = dc_sbm(np.array([30, 30]), 0.3, 0.0, np.random.default_rng(6))
        assert edge_homophily(adj, labels) == 1.0

    def test_reproducible(self):
        a1, _ = dc_sbm(np.array([40, 40]), 0.1, 0.02, np.random.default_rng(7))
        a2, _ = dc_sbm(np.array([40, 40]), 0.1, 0.02, np.random.default_rng(7))
        assert abs(a1 - a2).sum() == 0

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            dc_sbm(np.array([10, 10]), 0.1, 0.5, np.random.default_rng(0))

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError):
            dc_sbm(np.array([10, 0]), 0.1, 0.05, np.random.default_rng(0))

    def test_empty_graph_when_p_zero(self):
        adj, _ = dc_sbm(np.array([10, 10]), 0.0, 0.0, np.random.default_rng(0))
        assert adj.nnz == 0
        assert np.isnan(edge_homophily(adj, np.zeros(20, dtype=int)))


class TestFeatures:
    def test_shape(self):
        labels = np.random.default_rng(0).integers(0, 4, 50)
        x = class_conditional_features(labels, 200, np.random.default_rng(0))
        assert x.shape == (50, 200)

    def test_sparse(self):
        labels = np.zeros(30, dtype=int)
        x = class_conditional_features(labels, 500, np.random.default_rng(1), words_per_node=10)
        assert feature_sparsity(x) > 0.9

    def test_row_normalized(self):
        labels = np.random.default_rng(2).integers(0, 3, 40)
        x = class_conditional_features(labels, 100, np.random.default_rng(2))
        sums = x.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_unnormalized_binary(self):
        labels = np.zeros(20, dtype=int)
        x = class_conditional_features(
            labels, 100, np.random.default_rng(3), row_normalize=False
        )
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_class_signal_separates_means(self):
        rng = np.random.default_rng(4)
        labels = np.repeat([0, 1], 100)
        x = class_conditional_features(labels, 300, rng, class_signal=0.9)
        mu0 = x[labels == 0].mean(axis=0)
        mu1 = x[labels == 1].mean(axis=0)
        separated = np.linalg.norm(mu0 - mu1)
        x_noise = class_conditional_features(labels, 300, np.random.default_rng(5), class_signal=0.0)
        n0 = x_noise[labels == 0].mean(axis=0)
        n1 = x_noise[labels == 1].mean(axis=0)
        assert separated > 2 * np.linalg.norm(n0 - n1)

    def test_invalid_signal(self):
        with pytest.raises(ValueError):
            class_conditional_features(np.zeros(3, dtype=int), 10, np.random.default_rng(0), class_signal=2.0)

    def test_invalid_words(self):
        with pytest.raises(ValueError):
            class_conditional_features(np.zeros(3, dtype=int), 10, np.random.default_rng(0), words_per_node=0)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            class_conditional_features(np.zeros((3, 2), dtype=int), 10, np.random.default_rng(0))


class TestDatasets:
    def test_all_five_registered(self):
        assert set(DATASET_STATS) == {"cora", "citeseer", "computer", "photo", "coauthor-cs"}

    def test_table2_statistics(self):
        s = DATASET_STATS["cora"]
        assert (s.nodes, s.edges, s.classes, s.features) == (2708, 5429, 7, 1433)
        s = DATASET_STATS["coauthor-cs"]
        assert (s.nodes, s.classes, s.features) == (18333, 15, 6805)

    def test_cora_twin_counts(self):
        g = load_dataset("cora", seed=0)
        assert g.num_nodes == 2708
        assert g.num_classes == 7
        assert g.num_features == 1433
        # Edge count is stochastic (Poisson) but should be within 15%.
        assert abs(g.num_edges - 5429) / 5429 < 0.15

    def test_scale_reduces_size(self):
        g = load_dataset("citeseer", seed=0, scale=0.25)
        assert g.num_nodes == pytest.approx(3312 * 0.25, rel=0.05)
        assert g.num_features == 3703  # feature dim preserved

    def test_homophilous(self):
        g = load_dataset("cora", seed=1, scale=0.5)
        assert edge_homophily(g.adj, g.y) > 0.6

    def test_split_ratios(self):
        g = load_dataset("cora", seed=0)
        tr, va, te = split_sizes(g)
        n = g.num_nodes
        assert tr <= 0.03 * n  # ~1% with per-class floor
        assert va == pytest.approx(0.2 * n, rel=0.1)
        assert te == pytest.approx(0.2 * n, rel=0.1)

    def test_split_disjoint(self):
        g = load_dataset("photo", seed=0, scale=0.2)
        assert not np.any(g.train_mask & g.val_mask)
        assert not np.any(g.train_mask & g.test_mask)
        assert not np.any(g.val_mask & g.test_mask)

    def test_every_class_has_train_node(self):
        g = load_dataset("citeseer", seed=0, scale=0.3)
        assert set(np.unique(g.y[g.train_mask])) == set(range(g.num_classes))

    def test_no_split_option(self):
        g = load_dataset("cora", seed=0, scale=0.2, split=False)
        assert g.train_mask is None

    def test_seed_changes_graph(self):
        g1 = load_dataset("cora", seed=0, scale=0.2)
        g2 = load_dataset("cora", seed=1, scale=0.2)
        assert abs(g1.adj - g2.adj).sum() > 0

    def test_same_seed_reproduces(self):
        g1 = load_dataset("cora", seed=3, scale=0.2)
        g2 = load_dataset("cora", seed=3, scale=0.2)
        assert abs(g1.adj - g2.adj).sum() == 0
        np.testing.assert_array_equal(g1.x, g2.x)
        np.testing.assert_array_equal(g1.train_mask, g2.train_mask)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("pubmed")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale=0.0)

    def test_structural_invariants(self):
        load_dataset("computer", seed=0, scale=0.1).validate()


class TestSplits:
    def test_ratios_must_be_sane(self):
        g = load_dataset("cora", seed=0, scale=0.2, split=False)
        with pytest.raises(ValueError):
            semi_supervised_split(g, np.random.default_rng(0), train_ratio=0.5, val_ratio=0.5, test_ratio=0.5)

    def test_negative_ratio_rejected(self):
        g = load_dataset("cora", seed=0, scale=0.2, split=False)
        with pytest.raises(ValueError):
            semi_supervised_split(g, np.random.default_rng(0), train_ratio=-0.1)

    def test_split_sizes_requires_masks(self):
        g = load_dataset("cora", seed=0, scale=0.2, split=False)
        with pytest.raises(ValueError):
            split_sizes(g)

    def test_stratification(self):
        g = load_dataset("cora", seed=0, scale=0.5, split=False)
        semi_supervised_split(g, np.random.default_rng(0), train_ratio=0.1)
        for c in range(g.num_classes):
            class_total = (g.y == c).sum()
            class_train = (g.y[g.train_mask] == c).sum()
            if class_total >= 10:
                assert class_train == pytest.approx(0.1 * class_total, abs=2)
