"""Tests for the Graph container and normalized propagation operators."""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph, add_self_loops, normalized_adjacency
from repro.graphs.laplacian import row_normalized_adjacency, spectral_radius_bound


def tiny_graph(n=6, seed=0, num_classes=3):
    rng = np.random.default_rng(seed)
    adj = sp.random(n, n, density=0.4, random_state=seed)
    adj = ((adj + adj.T) > 0).astype(float).tocsr()
    adj.setdiag(0)
    adj.eliminate_zeros()
    x = rng.standard_normal((n, 4))
    y = rng.integers(0, num_classes, n)
    return Graph(x=x, adj=adj, y=y, num_classes=num_classes)


class TestGraphContainer:
    def test_basic_properties(self):
        g = tiny_graph()
        assert g.num_nodes == 6
        assert g.num_features == 4
        assert g.num_edges == g.adj.nnz // 2

    def test_rejects_adj_shape_mismatch(self):
        with pytest.raises(ValueError):
            Graph(x=np.zeros((3, 2)), adj=sp.identity(4), y=np.zeros(3, dtype=int), num_classes=2)

    def test_rejects_label_count_mismatch(self):
        with pytest.raises(ValueError):
            Graph(x=np.zeros((3, 2)), adj=sp.csr_matrix((3, 3)), y=np.zeros(2, dtype=int), num_classes=2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            Graph(x=np.zeros((2, 2)), adj=sp.csr_matrix((2, 2)), y=np.array([0, 5]), num_classes=2)

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError):
            Graph(
                x=np.zeros((2, 2)),
                adj=sp.csr_matrix((2, 2)),
                y=np.zeros(2, dtype=int),
                num_classes=1,
                train_mask=np.array([True]),
            )

    def test_rejects_nonpositive_classes(self):
        with pytest.raises(ValueError):
            Graph(x=np.zeros((2, 2)), adj=sp.csr_matrix((2, 2)), y=np.zeros(2, dtype=int), num_classes=0)

    def test_validate_symmetry(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        g = Graph(x=np.zeros((2, 2)), adj=adj, y=np.zeros(2, dtype=int), num_classes=1)
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_diagonal(self):
        adj = sp.identity(3, format="csr")
        g = Graph(x=np.zeros((3, 2)), adj=adj, y=np.zeros(3, dtype=int), num_classes=1)
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_nan_features(self):
        g = tiny_graph()
        g.x[0, 0] = np.nan
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_passes_clean(self):
        tiny_graph().validate()

    def test_validate_is_warning_free(self):
        # The old `(adj != adj.T).nnz` check tripped scipy's
        # SparseEfficiencyWarning; validate must survive `-W error`.
        g = tiny_graph(12, seed=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            g.validate()

    def test_validate_asymmetry_detected_warning_free(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        g = Graph(x=np.zeros((2, 2)), adj=adj, y=np.zeros(2, dtype=int), num_classes=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ValueError, match="symmetric"):
                g.validate()

    def test_validate_tolerance_admits_float_noise(self):
        base = tiny_graph(8, seed=2).adj.astype(float)
        noisy = base.copy()
        noisy.data = noisy.data + np.linspace(0, 1e-13, noisy.data.size)
        g = Graph(
            x=np.zeros((8, 2)), adj=noisy, y=np.zeros(8, dtype=int), num_classes=1
        )
        with pytest.raises(ValueError):
            g.validate()  # exact symmetry demanded by default
        g.validate(atol=1e-9)  # explicit tolerance admits the noise

    def test_s_op_cached_container(self):
        g = tiny_graph()
        assert g.s_op is g.s_op
        np.testing.assert_array_equal(g.s_op.toarray(), g.s_norm.toarray())

    def test_mean_op_cached_container(self):
        g = tiny_graph()
        assert g.mean_op is g.mean_op
        np.testing.assert_array_equal(g.mean_op.toarray(), g.mean_adj.toarray())

    def test_degrees(self):
        g = tiny_graph()
        np.testing.assert_array_equal(g.degrees(), np.asarray(g.adj.sum(axis=1)).ravel())

    def test_label_counts_full_length(self):
        g = tiny_graph(num_classes=5)
        assert len(g.label_counts()) == 5
        assert g.label_counts().sum() == g.num_nodes

    def test_copy_independent(self):
        g = tiny_graph()
        g.train_mask = np.zeros(g.num_nodes, dtype=bool)
        c = g.copy()
        c.x[0, 0] = 99.0
        c.train_mask[0] = True
        assert g.x[0, 0] != 99.0
        assert not g.train_mask[0]

    def test_s_norm_cached(self):
        g = tiny_graph()
        assert g.s_norm is g.s_norm

    def test_summary_mentions_counts(self):
        s = tiny_graph().summary()
        assert "6 nodes" in s and "3 classes" in s


class TestLaplacian:
    def test_self_loops_added(self):
        adj = sp.csr_matrix((4, 4))
        out = add_self_loops(adj)
        np.testing.assert_array_equal(out.diagonal(), np.ones(4))

    def test_normalized_rows_path_graph(self):
        # Path graph 0-1-2: hand-computed S̃.
        adj = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float))
        s = normalized_adjacency(adj).toarray()
        d = np.array([2.0, 3.0, 2.0])
        expected = (np.diag(d**-0.5) @ (adj.toarray() + np.eye(3)) @ np.diag(d**-0.5))
        np.testing.assert_allclose(s, expected)

    def test_normalized_symmetric(self):
        g = tiny_graph(10, seed=3)
        s = normalized_adjacency(g.adj)
        assert abs(s - s.T).sum() < 1e-12

    def test_isolated_nodes_handled(self):
        adj = sp.csr_matrix((3, 3))  # all isolated
        s = normalized_adjacency(adj).toarray()
        np.testing.assert_allclose(s, np.eye(3))

    def test_spectral_radius_bound_dominates_true_radius(self):
        g = tiny_graph(20, seed=5)
        true_radius = np.abs(np.linalg.eigvalsh(g.s_norm.toarray())).max()
        assert spectral_radius_bound(g.s_norm) >= true_radius - 1e-12

    def test_eigenvalues_bounded(self):
        g = tiny_graph(15, seed=7)
        vals = np.linalg.eigvalsh(g.s_norm.toarray())
        assert vals.max() <= 1.0 + 1e-9
        assert vals.min() >= -1.0 - 1e-9

    def test_row_normalized_rows_sum_to_one(self):
        g = tiny_graph(12, seed=9)
        r = row_normalized_adjacency(g.adj)
        np.testing.assert_allclose(np.asarray(r.sum(axis=1)).ravel(), np.ones(12))

    def test_constant_vector_fixed_point_regular_graph(self):
        # On a k-regular graph S̃·1 = 1 exactly.
        import networkx as nx

        ring = nx.cycle_graph(8)
        adj = nx.to_scipy_sparse_array(ring, format="csr").astype(float)
        s = normalized_adjacency(sp.csr_matrix(adj))
        ones = np.ones(8)
        np.testing.assert_allclose(s @ ones, ones, atol=1e-12)
