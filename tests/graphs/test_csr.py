"""CSRMatrix container: construction, reverse caching, conversion metering.

The headline regression here is the spmm transpose-cache bug: the old
``spmm`` claimed to cache ``S.T.tocsr()`` for backward but the closure
variable was fresh on every forward call, so every training step paid a
full O(nnz) sparse conversion per layer.  These tests pin the fixed
contract — *exactly one* transpose conversion per graph operator across
an entire multi-round training run, on both the fused container path and
the legacy raw-scipy path.
"""

import copy

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, spmm
from repro.autograd.backends import (
    reset_transpose_conversion_count,
    transpose_conversion_count,
)
from repro.graphs import CSRMatrix, Graph
from repro.nn import Adam, cross_entropy


def _random_csr(n=30, density=0.2, seed=0):
    return sp.random(n, n, density=density, random_state=seed, format="csr")


def _small_graph(n=24, classes=3, feats=6, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, 3 * n)
    cols = rng.integers(0, n, 3 * n)
    keep = rows != cols
    a = sp.coo_matrix(
        (np.ones(keep.sum()), (rows[keep], cols[keep])), shape=(n, n)
    ).tocsr()
    a = a + a.T
    a.data[:] = 1.0
    return Graph(
        x=rng.standard_normal((n, feats)),
        adj=a,
        y=rng.integers(0, classes, n),
        num_classes=classes,
        train_mask=np.ones(n, dtype=bool),
    )


class TestConstruction:
    def test_from_scipy_shares_values(self):
        m = _random_csr()
        c = CSRMatrix.from_scipy(m)
        assert c.shape == m.shape and c.nnz == m.nnz
        assert c.data is m.data  # no copy for CSR input
        np.testing.assert_array_equal(c.toarray(), m.toarray())

    def test_from_scipy_accepts_other_formats(self):
        m = _random_csr().tocoo()
        c = CSRMatrix.from_scipy(m)
        np.testing.assert_array_equal(c.toarray(), m.toarray())

    def test_rejects_dense(self):
        with pytest.raises(TypeError):
            CSRMatrix.from_scipy(np.eye(3))

    def test_rejects_non_float64(self):
        with pytest.raises(ValueError, match="float64"):
            CSRMatrix.from_scipy(sp.identity(3, format="csr", dtype=np.float32))

    def test_to_scipy_roundtrip_is_cached_view(self):
        c = CSRMatrix.from_scipy(_random_csr())
        assert c.to_scipy() is c.to_scipy()

    def test_deepcopy_is_independent(self):
        c = CSRMatrix.from_scipy(_random_csr())
        c2 = copy.deepcopy(c)
        assert c2.data is not c.data
        np.testing.assert_array_equal(c2.toarray(), c.toarray())


class TestReverse:
    def test_rev_is_bitwise_transpose(self):
        m = _random_csr(seed=3)
        c = CSRMatrix.from_scipy(m)
        ref = m.T.tocsr()
        assert np.array_equal(c.rev.data, ref.data)
        assert np.array_equal(c.rev.indices, ref.indices)
        assert np.array_equal(c.rev.indptr, ref.indptr)

    def test_rev_of_rev_is_original(self):
        c = CSRMatrix.from_scipy(_random_csr())
        assert c.rev.rev is c

    def test_eager_reverse_counts_one_conversion(self):
        m = _random_csr()
        reset_transpose_conversion_count()
        c = CSRMatrix.from_scipy(m)
        assert transpose_conversion_count() == 1
        # Repeated access never converts again.
        for _ in range(5):
            _ = c.rev
            _ = c.T
        assert transpose_conversion_count() == 1

    def test_lazy_reverse_skipped_for_forward_only(self):
        m = _random_csr()
        reset_transpose_conversion_count()
        c = CSRMatrix.from_scipy(m, build_reverse=False)
        c.matmul(np.ones((m.shape[1], 2)))
        assert transpose_conversion_count() == 0
        _ = c.rev
        assert transpose_conversion_count() == 1

    def test_matmul_and_rev_matmul_match_scipy(self):
        m = _random_csr(seed=5)
        c = CSRMatrix.from_scipy(m)
        x = np.random.default_rng(0).standard_normal((m.shape[1], 4))
        g = np.random.default_rng(1).standard_normal((m.shape[0], 4))
        assert np.array_equal(c.matmul(x), m @ x)
        assert np.array_equal(c.rev_matmul(g), m.T.tocsr() @ g)


class TestTransposeCacheRegression:
    """Exactly one transpose conversion per graph across a multi-round run."""

    def _train(self, model_name, graph, steps=6):
        from repro.gnn import GCN, SAGE

        cls = {"gcn": GCN, "sage": SAGE}[model_name]
        model = cls(
            graph.num_features,
            graph.num_classes,
            hidden=8,
            rng=np.random.default_rng(0),
        )
        opt = Adam(model.parameters(), lr=0.01)
        for _ in range(steps):
            opt.zero_grad()
            cross_entropy(model(graph), graph.y, graph.train_mask).backward()
            opt.step()

    def test_gcn_multi_round_converts_once(self):
        graph = _small_graph()
        reset_transpose_conversion_count()
        self._train("gcn", graph)
        # One conversion for graph.s_op's reverse-CSR — not one per
        # layer per forward call as the pre-substrate spmm paid.
        assert transpose_conversion_count() == 1

    def test_sage_multi_round_converts_once(self):
        graph = _small_graph(seed=1)
        reset_transpose_conversion_count()
        self._train("sage", graph)
        assert transpose_conversion_count() == 1

    def test_two_operators_convert_twice(self):
        graph = _small_graph(seed=2)
        reset_transpose_conversion_count()
        self._train("gcn", graph)
        self._train("sage", graph)
        assert transpose_conversion_count() == 2

    def test_legacy_scipy_path_converts_once(self):
        # Raw scipy operands (no CSRMatrix) cache the reverse on the
        # operand object: many forward/backward rounds, one conversion.
        s = _random_csr(seed=9)
        reset_transpose_conversion_count()
        for _ in range(7):
            x = Tensor(np.random.default_rng(0).standard_normal((30, 3)), requires_grad=True)
            (spmm(s, x) ** 2).sum().backward()
            assert x.grad is not None
        assert transpose_conversion_count() == 1

    def test_fresh_graphs_convert_independently(self):
        reset_transpose_conversion_count()
        for seed in range(3):
            self._train("gcn", _small_graph(seed=seed), steps=2)
        assert transpose_conversion_count() == 3
