"""Tests for Louvain/random partitioning and non-iid metrics."""

import numpy as np
import pytest

from repro.graphs import (
    feature_mean_distance,
    label_divergence,
    load_dataset,
    louvain_partition,
    party_label_matrix,
    random_partition,
    subgraph,
)
from repro.graphs.metrics_noniid import label_distribution, missing_classes_per_party


@pytest.fixture(scope="module")
def cora_small():
    return load_dataset("cora", seed=0, scale=0.4)


class TestSubgraph:
    def test_node_slice(self, cora_small):
        nodes = np.arange(50)
        s = subgraph(cora_small, nodes)
        assert s.num_nodes == 50
        np.testing.assert_array_equal(s.y, cora_small.y[:50])

    def test_masks_sliced(self, cora_small):
        nodes = np.arange(100)
        s = subgraph(cora_small, nodes)
        np.testing.assert_array_equal(s.train_mask, cora_small.train_mask[:100])

    def test_cross_edges_dropped(self, cora_small):
        half = cora_small.num_nodes // 2
        a = subgraph(cora_small, np.arange(half))
        b = subgraph(cora_small, np.arange(half, cora_small.num_nodes))
        assert a.num_edges + b.num_edges <= cora_small.num_edges

    def test_num_classes_preserved(self, cora_small):
        s = subgraph(cora_small, np.arange(10))
        assert s.num_classes == cora_small.num_classes

    def test_empty_rejected(self, cora_small):
        with pytest.raises(ValueError):
            subgraph(cora_small, np.array([], dtype=int))

    def test_adjacency_stays_symmetric(self, cora_small):
        s = subgraph(cora_small, np.arange(0, cora_small.num_nodes, 3))
        s.validate()


class TestLouvainPartition:
    @pytest.mark.parametrize("m", [3, 5, 7])
    def test_party_count(self, cora_small, m):
        pr = louvain_partition(cora_small, m, np.random.default_rng(0))
        assert pr.num_parties == m
        assert all(s > 0 for s in pr.sizes())

    def test_covers_all_nodes_exactly_once(self, cora_small):
        pr = louvain_partition(cora_small, 4, np.random.default_rng(1))
        all_nodes = np.concatenate(pr.node_maps)
        assert len(all_nodes) == cora_small.num_nodes
        assert len(np.unique(all_nodes)) == cora_small.num_nodes

    def test_subgraph_labels_match_global(self, cora_small):
        pr = louvain_partition(cora_small, 3, np.random.default_rng(2))
        for part, nodes in zip(pr.parts, pr.node_maps):
            np.testing.assert_array_equal(part.y, cora_small.y[nodes])

    def test_roughly_balanced(self, cora_small):
        pr = louvain_partition(cora_small, 5, np.random.default_rng(3))
        sizes = np.array(pr.sizes())
        assert sizes.max() < 3 * sizes.min()

    def test_high_resolution_more_communities(self, cora_small):
        lo = louvain_partition(cora_small, 3, np.random.default_rng(4), resolution=0.5)
        hi = louvain_partition(cora_small, 3, np.random.default_rng(4), resolution=20.0)
        assert hi.num_communities > lo.num_communities

    def test_more_parties_than_communities_splits(self):
        g = load_dataset("cora", seed=0, scale=0.1)
        pr = louvain_partition(g, 50, np.random.default_rng(0), resolution=0.1)
        assert pr.num_parties == 50

    def test_invalid_party_count(self, cora_small):
        with pytest.raises(ValueError):
            louvain_partition(cora_small, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            louvain_partition(cora_small, cora_small.num_nodes + 1, np.random.default_rng(0))


class TestRandomPartition:
    def test_counts(self, cora_small):
        pr = random_partition(cora_small, 6, np.random.default_rng(0))
        assert pr.num_parties == 6
        assert sum(pr.sizes()) == cora_small.num_nodes

    def test_no_empty_parties(self, cora_small):
        pr = random_partition(cora_small, 10, np.random.default_rng(1))
        assert all(s > 0 for s in pr.sizes())


class TestNonIIDMetrics:
    def test_louvain_more_noniid_than_random(self, cora_small):
        rng = np.random.default_rng(0)
        louvain = louvain_partition(cora_small, 5, rng)
        rand = random_partition(cora_small, 5, rng)
        assert label_divergence(louvain.parts) > 3 * label_divergence(rand.parts)

    def test_label_distribution_normalized(self, cora_small):
        pr = louvain_partition(cora_small, 3, np.random.default_rng(0))
        for p in pr.parts:
            assert label_distribution(p).sum() == pytest.approx(1.0)

    def test_party_label_matrix_shape(self, cora_small):
        pr = louvain_partition(cora_small, 4, np.random.default_rng(0))
        mat = party_label_matrix(pr.parts)
        assert mat.shape == (4, cora_small.num_classes)
        assert mat.sum() == cora_small.num_nodes

    def test_party_label_matrix_empty_rejected(self):
        with pytest.raises(ValueError):
            party_label_matrix([])

    def test_divergence_zero_single_party(self, cora_small):
        assert label_divergence([cora_small]) == 0.0

    def test_divergence_max_for_disjoint(self):
        g1 = load_dataset("cora", seed=0, scale=0.1)
        # Build two synthetic parties with disjoint labels.
        a = subgraph(g1, np.flatnonzero(g1.y == 0))
        b = subgraph(g1, np.flatnonzero(g1.y == 1))
        assert label_divergence([a, b]) == pytest.approx(np.log(2), rel=1e-6)

    def test_feature_mean_distance_positive(self, cora_small):
        pr = louvain_partition(cora_small, 4, np.random.default_rng(0))
        assert feature_mean_distance(pr.parts) > 0

    def test_feature_mean_distance_single(self, cora_small):
        assert feature_mean_distance([cora_small]) == 0.0

    def test_missing_classes_counts(self, cora_small):
        pr = louvain_partition(cora_small, 5, np.random.default_rng(0))
        missing = missing_classes_per_party(pr.parts)
        assert len(missing) == 5
        assert all(0 <= m < cora_small.num_classes for m in missing)
