"""Tests for the seven baseline trainers (shared contract + specifics)."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    FedGCNTrainer,
    FedLITTrainer,
    FedMLPTrainer,
    FedProxTrainer,
    FedSagePlusTrainer,
    LocGCNTrainer,
    ScaffoldTrainer,
)
from repro.federated import TrainerConfig
from repro.graphs import load_dataset, louvain_partition


@pytest.fixture(scope="module")
def parts():
    g = load_dataset("cora", seed=0, scale=0.2)
    return louvain_partition(g, 3, np.random.default_rng(0)).parts


QUICK = dict(max_rounds=6, patience=20, hidden=16)


class TestSharedContract:
    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_runs_and_reports(self, parts, name):
        tr = ALL_BASELINES[name](parts, TrainerConfig(**QUICK), seed=0)
        hist = tr.run()
        assert len(hist) >= 1
        acc = hist.final_test_accuracy()
        assert 0.0 <= acc <= 1.0

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_reproducible(self, parts, name):
        a = ALL_BASELINES[name](parts, TrainerConfig(**QUICK), seed=1).run()
        b = ALL_BASELINES[name](parts, TrainerConfig(**QUICK), seed=1).run()
        assert a.test_accuracies == b.test_accuracies

    def test_registry_names(self):
        assert set(ALL_BASELINES) == {
            "fedmlp",
            "fedprox",
            "scaffold",
            "locgcn",
            "fedgcn",
            "fedlit",
            "fedsage+",
        }


class TestLocGCN:
    def test_no_communication(self, parts):
        tr = LocGCNTrainer(parts, TrainerConfig(**QUICK), seed=0)
        tr.run()
        assert tr.comm.stats.total_bytes == 0

    def test_models_diverge(self, parts):
        tr = LocGCNTrainer(parts, TrainerConfig(**QUICK), seed=0)
        tr.run()
        w0 = tr.clients[0].model.conv1.weight.data
        w1 = tr.clients[1].model.conv1.weight.data
        assert np.abs(w0 - w1).sum() > 0


class TestFedGCNvsMLP:
    def test_graph_structure_helps(self, parts):
        # The LocGCN/FedGCN vs FedMLP gap of Table 4 should appear even
        # on a short run of the synthetic twin.
        cfg = TrainerConfig(max_rounds=50, patience=100, hidden=32)
        mlp = FedMLPTrainer(parts, cfg, seed=0).run().final_test_accuracy()
        gcn = FedGCNTrainer(parts, cfg, seed=0).run().final_test_accuracy()
        assert gcn > mlp


class TestFedProx:
    def test_proximal_term_zero_at_anchor(self, parts):
        tr = FedProxTrainer(parts, TrainerConfig(**QUICK), seed=0, mu=1.0)
        # At initialization, W == W_global, so FedProx loss == plain CE.
        c = tr.clients[0]
        c.model.eval()  # freeze dropout so both losses see the same forward
        assert tr.local_loss(c).item() == pytest.approx(c.ce_loss().item(), rel=1e-9)

    def test_proximal_term_positive_off_anchor(self, parts):
        tr = FedProxTrainer(parts, TrainerConfig(**QUICK), seed=0, mu=1.0)
        c = tr.clients[0]
        c.model.fc1.weight.data += 0.5
        assert tr.local_loss(c).item() > c.ce_loss().item()

    def test_mu_zero_is_fedmlp(self, parts):
        cfg = TrainerConfig(**QUICK)
        prox = FedProxTrainer(parts, cfg, seed=0, mu=0.0).run()
        mlp = FedMLPTrainer(parts, cfg, seed=0).run()
        assert prox.test_accuracies == pytest.approx(mlp.test_accuracies)

    def test_invalid_mu(self, parts):
        with pytest.raises(ValueError):
            FedProxTrainer(parts, TrainerConfig(**QUICK), mu=-1.0)

    def test_large_mu_restricts_drift(self, parts):
        # With a single local epoch per round the weights always sit at the
        # anchor when a step begins (zero proximal gradient), so the effect
        # only shows with several local epochs.
        cfg = TrainerConfig(max_rounds=4, patience=20, hidden=16, local_epochs=5)
        free = FedProxTrainer(parts, cfg, seed=0, mu=0.0)
        tight = FedProxTrainer(parts, cfg, seed=0, mu=100.0)
        w0_free = free.clients[0].get_state()
        w0_tight = tight.clients[0].get_state()
        free.run()
        tight.run()
        drift_free = sum(
            np.abs(free.clients[0].get_state()[k] - w0_free[k]).sum() for k in w0_free
        )
        drift_tight = sum(
            np.abs(tight.clients[0].get_state()[k] - w0_tight[k]).sum() for k in w0_tight
        )
        assert drift_tight < drift_free


class TestScaffold:
    def test_control_variates_initialized_zero(self, parts):
        tr = ScaffoldTrainer(parts, TrainerConfig(**QUICK), seed=0)
        assert all(np.all(v == 0) for v in tr._server_c.values())

    def test_control_variates_update(self, parts):
        tr = ScaffoldTrainer(parts, TrainerConfig(max_rounds=3, patience=20, hidden=16), seed=0)
        tr.run()
        total = sum(np.abs(v).sum() for v in tr._server_c.values())
        assert total > 0

    def test_correction_is_linear_in_params(self, parts):
        # With c == c_i == 0 the loss equals plain CE.
        tr = ScaffoldTrainer(parts, TrainerConfig(**QUICK), seed=0)
        c = tr.clients[0]
        c.model.eval()  # freeze dropout so both losses see the same forward
        assert tr.local_loss(c).item() == pytest.approx(c.ce_loss().item(), rel=1e-9)


class TestFedLIT:
    def test_typed_adjacencies_partition_edges(self, parts):
        tr = FedLITTrainer(parts, TrainerConfig(**QUICK), seed=0, num_types=2)
        for c in tr.clients:
            s_list = tr._typed_adjs[c.cid]
            assert len(s_list) == 2
            # Typed adjacencies (pre-normalization they partition edges);
            # normalized versions have self-loops on every node, so just
            # check shapes and non-emptiness of the union.
            for s in s_list:
                assert s.shape == (c.graph.num_nodes, c.graph.num_nodes)

    def test_invalid_num_types(self, parts):
        with pytest.raises(ValueError):
            FedLITTrainer(parts, TrainerConfig(**QUICK), num_types=0)

    def test_reclustering_runs(self, parts):
        cfg = TrainerConfig(max_rounds=6, patience=20, hidden=16)
        tr = FedLITTrainer(parts, cfg, seed=0, num_types=2, recluster_every=2)
        tr.run()  # exercises recluster + alignment paths

    def test_kmeans_basic(self):
        from repro.baselines.fedlit import kmeans

        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(0, 0.1, (30, 2)), rng.normal(5, 0.1, (30, 2))])
        assign, cent = kmeans(x, 2, rng)
        assert len(np.unique(assign[:30])) == 1
        assert len(np.unique(assign[30:])) == 1
        assert assign[0] != assign[30]

    def test_kmeans_more_clusters_than_points(self):
        from repro.baselines.fedlit import kmeans

        x = np.zeros((2, 3))
        assign, cent = kmeans(x, 5, np.random.default_rng(0))
        assert cent.shape[0] == 2

    def test_kmeans_rejects_empty(self):
        from repro.baselines.fedlit import kmeans

        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2, np.random.default_rng(0))


class TestFedSagePlus:
    def test_hide_edges_splits(self, parts):
        from repro.baselines.fedsage import hide_edges

        g = parts[0]
        vis, count, feat = hide_edges(g, 0.3, np.random.default_rng(0))
        assert vis.num_edges < g.num_edges
        assert count.sum() > 0
        assert feat.shape == g.x.shape

    def test_hide_edges_counts_consistent(self, parts):
        from repro.baselines.fedsage import hide_edges

        g = parts[0]
        vis, count, _ = hide_edges(g, 0.5, np.random.default_rng(1))
        # Hidden edge endpoints: total count = 2 × hidden edges.
        hidden_edges = g.num_edges - vis.num_edges
        assert count.sum() == pytest.approx(2 * hidden_edges)

    def test_hide_edges_invalid_frac(self, parts):
        from repro.baselines.fedsage import hide_edges

        with pytest.raises(ValueError):
            hide_edges(parts[0], 0.0, np.random.default_rng(0))

    def test_mend_graph_adds_nodes(self, parts):
        from repro.baselines.fedsage import mend_graph

        g = parts[0]
        deg = np.zeros(g.num_nodes)
        deg[:5] = 2.0
        feats = np.random.default_rng(0).random((g.num_nodes, g.num_features))
        mended = mend_graph(g, deg, feats)
        assert mended.num_nodes == g.num_nodes + 10
        # Generated nodes excluded from all masks.
        assert mended.train_mask[g.num_nodes :].sum() == 0
        assert mended.test_mask[g.num_nodes :].sum() == 0

    def test_mend_graph_no_predictions_is_identity(self, parts):
        from repro.baselines.fedsage import mend_graph

        g = parts[0]
        mended = mend_graph(g, np.zeros(g.num_nodes), g.x)
        assert mended is g

    def test_mend_caps_new_neighbors(self, parts):
        from repro.baselines.fedsage import mend_graph

        g = parts[0]
        deg = np.full(g.num_nodes, 100.0)
        mended = mend_graph(g, deg, g.x, max_new_per_node=1)
        assert mended.num_nodes == 2 * g.num_nodes

    def test_full_pipeline_mends(self, parts):
        tr = FedSagePlusTrainer(
            parts, TrainerConfig(**QUICK), seed=0, gen_epochs=4, gen_fed_every=2
        )
        # Mended graphs should not be smaller than the originals.
        for c, g in zip(tr.clients, parts):
            assert c.graph.num_nodes >= g.num_nodes
