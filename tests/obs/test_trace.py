"""Tests for span tracing and the JSONL export/validation layer."""

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    SCHEMA_VERSION,
    TelemetrySession,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    validate_event,
    validate_events,
    write_jsonl,
)


class TestSpans:
    def test_span_records_event(self):
        tr = Tracer()
        with tr.span("work", round=3):
            pass
        events = tr.events()
        assert len(events) == 1
        (e,) = events
        assert e["type"] == "span"
        assert e["name"] == "work"
        assert e["attrs"] == {"round": 3}
        assert e["t_end"] >= e["t_start"]
        assert e["dur"] == pytest.approx(e["t_end"] - e["t_start"])

    def test_nesting_via_thread_local_stack(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            assert tr.current() is outer
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tr.current() is None
        by_name = {e["name"]: e for e in tr.events()}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None

    def test_explicit_parent_beats_stack(self):
        tr = Tracer()
        with tr.span("a") as a:
            pass
        with tr.span("b"):
            with tr.span("child", parent=a) as child:
                assert child.parent_id == a.span_id

    def test_span_ids_unique(self):
        tr = Tracer()
        for _ in range(50):
            with tr.span("s"):
                pass
        ids = [e["span_id"] for e in tr.events()]
        assert len(set(ids)) == len(ids)

    def test_duration_while_open(self):
        tr = Tracer()
        with tr.span("s") as s:
            assert s.duration >= 0.0
        assert s.t_end is not None

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError
        assert len(tr.events()) == 1
        assert tr.current() is None

    def test_concurrent_emission_loses_no_events(self):
        tr = Tracer()
        n_threads, n_spans = 8, 100

        def work(i):
            for j in range(n_spans):
                with tr.span("task", thread=i, j=j):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = tr.events()
        assert len(events) == n_threads * n_spans
        ids = {e["span_id"] for e in events}
        assert len(ids) == n_threads * n_spans
        # Each thread's own spans are all present.
        for i in range(n_threads):
            mine = [e for e in events if e["attrs"]["thread"] == i]
            assert sorted(e["attrs"]["j"] for e in mine) == list(range(n_spans))

    def test_null_tracer_times_but_records_nothing(self):
        sp = NULL_TRACER.span("phase")
        with sp:
            pass
        assert sp.t_end is not None and sp.duration >= 0.0
        assert len(NULL_TRACER.events()) == 0
        assert NULL_TRACER.current() is None

    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_restore(self):
        live = Tracer()
        old = set_tracer(live)
        try:
            assert get_tracer() is live
        finally:
            set_tracer(old)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = Tracer()
        with tr.span("round", round=0):
            with tr.span("train", round=0):
                pass
        path = str(tmp_path / "trace.jsonl")
        events = [{"type": "meta", "schema": SCHEMA_VERSION, "attrs": {}}] + tr.events()
        assert write_jsonl(path, events) == 3
        loaded = read_jsonl(path)
        assert loaded == json.loads(json.dumps(events))
        assert validate_events(loaded) == 3

    def test_validate_rejects_bad_events(self):
        with pytest.raises(ValueError):
            validate_event({"type": "nope"})
        with pytest.raises(ValueError):
            validate_event({"type": "meta", "schema": "wrong/v9"})
        with pytest.raises(ValueError):
            validate_event(
                {
                    "type": "span",
                    "name": "x",
                    "span_id": 0,  # ids start at 1
                    "parent_id": None,
                    "t_start": 0.0,
                    "t_end": 1.0,
                    "dur": 1.0,
                }
            )
        with pytest.raises(ValueError):
            validate_event(
                {
                    "type": "span",
                    "name": "x",
                    "span_id": 1,
                    "parent_id": None,
                    "t_start": 2.0,
                    "t_end": 1.0,  # ends before it starts
                    "dur": -1.0,
                }
            )
        with pytest.raises(ValueError):
            validate_event({"type": "metric", "metric": "counter", "name": "x"})

    def test_validate_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            validate_events([])

    def test_validation_error_carries_index(self):
        good = {"type": "meta", "schema": SCHEMA_VERSION, "attrs": {}}
        with pytest.raises(ValueError, match="event 1"):
            validate_events([good, {"type": "bogus"}])


class TestTelemetrySession:
    def test_installs_and_restores_defaults(self):
        from repro.obs import NULL_REGISTRY, get_registry

        with TelemetrySession() as tel:
            assert get_tracer() is tel.tracer
            assert get_registry() is tel.registry
        assert get_tracer() is NULL_TRACER
        assert get_registry() is NULL_REGISTRY

    def test_saves_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        with TelemetrySession(path, experiment="unit") as tel:
            with get_tracer().span("round", round=0):
                pass
            from repro.obs import get_registry

            get_registry().counter("comm.bytes", direction="uplink", kind="weights").inc(8)
        events = read_jsonl(path)
        assert validate_events(events) == 3
        assert events[0]["type"] == "meta"
        assert events[0]["attrs"]["experiment"] == "unit"

    def test_double_install_raises(self):
        with TelemetrySession() as tel:
            with pytest.raises(RuntimeError):
                tel.install()

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            TelemetrySession().save()


class TestOpenSpansAndListeners:
    def test_open_spans_tracked_until_close(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                names = [s.name for s in tr.open_spans()]
                assert names == ["outer", "inner"]
            assert [s.name for s in tr.open_spans()] == ["outer"]
        assert tr.open_spans() == []

    def test_open_span_events_explicit_partial(self):
        tr = Tracer()
        span = tr.span("round", round=0)
        span.__enter__()
        try:
            (e,) = tr.open_span_events()
        finally:
            span.__exit__(None, None, None)
        assert e["open"] is True
        assert e["t_end"] is None
        assert e["dur"] > 0  # elapsed-so-far, not missing
        validate_event(e)
        assert tr.open_span_events() == []

    def test_session_events_include_open_spans(self):
        with TelemetrySession() as tel:
            span = tel.tracer.span("stuck")
            span.__enter__()
            try:
                events = tel.events()
            finally:
                span.__exit__(None, None, None)
        open_evs = [e for e in events if e.get("type") == "span" and e.get("open")]
        assert [e["name"] for e in open_evs] == ["stuck"]
        assert validate_events(events) == len(events)

    def test_listeners_fire_on_open_and_close(self):
        calls = []

        class Probe:
            def on_span_open(self, span):
                calls.append(("open", span.name))

            def on_span_close(self, span):
                calls.append(("close", span.name))

        tr = Tracer()
        probe = Probe()
        tr.add_listener(probe)
        with tr.span("a"):
            pass
        tr.remove_listener(probe)
        with tr.span("b"):
            pass
        assert calls == [("open", "a"), ("close", "a")]

    def test_null_tracer_skips_bookkeeping(self):
        with NULL_TRACER.span("x"):
            assert NULL_TRACER.open_spans() == []
        assert NULL_TRACER.open_span_events() == []
