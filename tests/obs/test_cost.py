"""Exact-cost assertions for the FLOP/byte model (repro.obs.cost).

Every count here is hand-computed from the operand shapes — the cost
model's contract is exactness, so tests use ``==``, never tolerance.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import matmul, spmm
from repro.autograd.tensor import Tensor
from repro.graphs.csr import CSRMatrix
from repro.obs.cost import (
    CostCollector,
    collecting,
    get_collector,
    layer_scope,
    matmul_flops,
    set_collector,
    spmm_bytes,
    spmm_flops,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture()
def collected():
    """A live collector over a fresh registry/tracer; uninstalls after."""
    registry, tracer = MetricsRegistry(), Tracer()
    with collecting(registry, tracer) as collector:
        yield registry, tracer, collector
    assert get_collector() is None or get_collector() is not collector


def flops_of(registry, **tags):
    m = registry.get("cost.flops", **tags)
    return m.value if m is not None else None


def bytes_of(registry, **tags):
    m = registry.get("cost.bytes", **tags)
    return m.value if m is not None else None


UNATTRIBUTED = dict(phase="-", client="-", layer="-")


class TestFormulas:
    def test_matmul_flops(self):
        assert matmul_flops(2, 3, 4) == 48

    def test_spmm_flops(self):
        assert spmm_flops(10, 4) == 80

    def test_spmm_bytes(self):
        # 12 bytes per stored entry + dense + output footprints.
        assert spmm_bytes(10, 96, 64) == 12 * 10 + 96 + 64


class TestMatmul:
    def test_forward_flops_exact(self, collected):
        registry, _, _ = collected
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        matmul(a, b)
        # (2,3) @ (3,4): 2·2·3·4 = 48.
        assert flops_of(registry, op="matmul", dir="fwd", **UNATTRIBUTED) == 48
        # fwd bytes: a (48) + b (96) + out (64) float64 footprints.
        assert bytes_of(registry, op="matmul", dir="fwd", **UNATTRIBUTED) == 208

    def test_backward_flops_per_grad_parent(self, collected):
        registry, _, _ = collected
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        out = matmul(a, b)
        out.backward(np.ones((2, 4)))
        # dA = G@Bᵀ and dB = Aᵀ@G each cost 2·m·k·n: 48 × 2 parents.
        assert flops_of(registry, op="matmul", dir="bwd", **UNATTRIBUTED) == 96

    def test_backward_single_grad_parent(self, collected):
        registry, _, _ = collected
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=False)
        matmul(a, b).backward(np.ones((2, 4)))
        assert flops_of(registry, op="matmul", dir="bwd", **UNATTRIBUTED) == 48


class TestSpmm:
    @pytest.fixture()
    def operator(self):
        s = sp.csr_matrix(
            np.array([[1.0, 0, 2.0], [0, 3.0, 0], [4.0, 0, 5.0]])
        )
        return CSRMatrix.from_scipy(s)  # nnz = 5

    def test_forward_exact_with_backend_tag(self, collected, operator):
        registry, _, _ = collected
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        spmm(operator, x)
        tags = dict(op="spmm", dir="fwd", backend="numpy", **UNATTRIBUTED)
        # 2·nnz·d = 2·5·4 = 40.
        assert flops_of(registry, **tags) == 40
        # 12·nnz + X (3·4·8) + out (3·4·8).
        assert bytes_of(registry, **tags) == 12 * 5 + 96 + 96

    def test_backward_exact(self, collected, operator):
        registry, _, _ = collected
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        spmm(operator, x).backward(np.ones((3, 4)))
        tags = dict(op="spmm", dir="bwd", backend="numpy", **UNATTRIBUTED)
        assert flops_of(registry, **tags) == 40

    def test_scipy_legacy_path_tagged_scipy(self, collected):
        registry, _, _ = collected
        s = sp.csr_matrix(np.eye(3))
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        spmm(s, x).backward(np.ones((3, 2)))
        fwd = dict(op="spmm", dir="fwd", backend="scipy", **UNATTRIBUTED)
        bwd = dict(op="spmm", dir="bwd", backend="scipy", **UNATTRIBUTED)
        assert flops_of(registry, **fwd) == 2 * 3 * 2
        assert flops_of(registry, **bwd) == 2 * 3 * 2

    def test_not_double_counted_by_generic_hook(self, collected, operator):
        """spmm is EXPLICIT: the shape hook must not add a second record."""
        registry, _, _ = collected
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        spmm(operator, x)
        spmm_keys = [k for k in registry.names() if "op=spmm" in k]
        # one flops + one bytes counter, single tag set (backend=numpy).
        assert len(spmm_keys) == 2
        for key in spmm_keys:
            assert "backend=numpy" in key


class TestElementwiseAndShape:
    def test_elementwise_one_flop_per_output(self, collected):
        registry, _, _ = collected
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a + a).backward(np.ones((2, 3)))
        assert flops_of(registry, op="add", dir="fwd", **UNATTRIBUTED) == 6
        # backward: one pass per grad-requiring parent edge (same tensor
        # twice → counted once per parent entry with requires_grad).
        assert flops_of(registry, op="add", dir="bwd", **UNATTRIBUTED) == 12

    def test_transpose_is_zero_flop(self, collected):
        registry, _, _ = collected
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.T.backward(np.ones((3, 2)))
        assert flops_of(registry, op="transpose", dir="fwd", **UNATTRIBUTED) == 0
        assert flops_of(registry, op="transpose", dir="bwd", **UNATTRIBUTED) == 0
        # bytes still move even at zero FLOPs.
        assert bytes_of(registry, op="transpose", dir="fwd", **UNATTRIBUTED) > 0


class TestAttribution:
    def test_phase_and_client_from_active_span(self, collected):
        registry, tracer, _ = collected
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with tracer.span("task", phase="train", client=1):
            a + a
        assert (
            flops_of(registry, op="add", dir="fwd", phase="train", client="1", layer="-")
            == 4
        )

    def test_phase_falls_back_to_span_name(self, collected):
        registry, tracer, _ = collected
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with tracer.span("eval"):
            a + a
        assert (
            flops_of(registry, op="add", dir="fwd", phase="eval", client="-", layer="-")
            == 4
        )

    def test_layer_scope(self, collected):
        registry, _, collector = collected
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with collector.layer("fc1"):
            a + a
        assert (
            flops_of(registry, op="add", dir="fwd", phase="-", client="-", layer="fc1")
            == 4
        )

    def test_module_call_enters_registered_name(self, collected):
        registry, _, _ = collected
        from repro.nn.linear import Linear

        lin = Linear(3, 2, rng=np.random.default_rng(0))
        # Simulate registration: Module.__setattr__/add_module stamp it.
        object.__setattr__(lin, "_obs_name", "encoder")
        lin(Tensor(np.ones((4, 3)), requires_grad=True))
        layer_keys = [k for k in registry.names() if "layer=encoder" in k]
        assert layer_keys, registry.names()

    def test_layer_scope_helper_is_noop_when_off(self):
        assert get_collector() is None
        with layer_scope("fc1"):
            pass  # must not raise without a collector


class TestLifecycle:
    def test_collecting_restores_previous(self):
        registry, tracer = MetricsRegistry(), Tracer()
        outer = CostCollector(registry, tracer)
        prev = set_collector(outer)
        try:
            with collecting(registry, tracer) as inner:
                assert get_collector() is inner
            assert get_collector() is outer
        finally:
            set_collector(prev)

    def test_off_means_no_counters(self):
        registry = MetricsRegistry()
        assert get_collector() is None
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a + a).backward(np.ones((2, 2)))
        assert registry.names() == []
