"""Bench history store + regression gate (repro.obs.bench)."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_name_from_path,
    check,
    compare,
    flatten_metrics,
    latest_entry,
    main,
    metric_direction,
    read_history,
    record,
)


class TestFlatten:
    def test_nested_dotted_paths(self):
        flat = flatten_metrics(
            {"a": {"step_s": 1.5, "rows": [{"x_s": 2}, {"note": "text"}]}}
        )
        assert flat == {"a.step_s": 1.5, "a.rows.0.x_s": 2.0}

    def test_booleans_and_strings_dropped(self):
        assert flatten_metrics({"ok": True, "name": "cora", "n": 3}) == {"n": 3.0}


class TestDirections:
    @pytest.mark.parametrize(
        "key,expected",
        [
            ("overhead_ratio", "lower"),
            ("model_matrix.0.step_s", "lower"),
            ("backward_transpose_cache.speedup", "higher"),
            ("nodes", None),
            ("count", None),
        ],
    )
    def test_suffix_rules(self, key, expected):
        assert metric_direction(key) == expected


class TestHistory:
    def test_record_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        record("kernels", {"step_s": 0.5}, history_path=path, host="ci")
        record("obs", {"overhead_ratio": 1.2}, history_path=path)
        entries = read_history(path)
        assert [e["bench"] for e in entries] == ["kernels", "obs"]
        assert all(e["schema"] == BENCH_SCHEMA for e in entries)
        assert entries[0]["context"] == {"host": "ci"}
        assert entries[0]["recorded_at"] > 0

    def test_latest_entry_picks_newest_matching(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        record("kernels", {"step_s": 1.0}, history_path=path)
        record("kernels", {"step_s": 2.0}, history_path=path)
        assert latest_entry("kernels", path)["metrics"] == {"step_s": 2.0}
        assert latest_entry("missing", path) is None

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps({"schema": "other/v9", "bench": "x"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            read_history(str(path))

    def test_bench_name_from_path(self):
        assert bench_name_from_path("/repo/BENCH_kernels.json") == "kernels"
        assert bench_name_from_path("custom.json") == "custom"


class TestCompare:
    def test_within_tolerance_passes(self):
        regs, compared = compare({"a_s": 1.0}, {"a_s": 1.14}, tol=0.15)
        assert regs == [] and compared == 1

    def test_slowdown_beyond_tolerance_fails(self):
        regs, _ = compare({"a_s": 1.0}, {"a_s": 1.16}, tol=0.15)
        assert len(regs) == 1
        assert regs[0]["key"] == "a_s"
        assert regs[0]["change"] == pytest.approx(0.16)

    def test_speedup_direction_inverted(self):
        # A higher-is-better metric regresses by *dropping*.
        regs, _ = compare({"speedup": 2.0}, {"speedup": 1.6}, tol=0.15)
        assert len(regs) == 1
        regs, _ = compare({"speedup": 2.0}, {"speedup": 2.5}, tol=0.15)
        assert regs == []

    def test_min_base_skips_noise(self):
        regs, compared = compare(
            {"tiny_s": 0.0001, "big_s": 1.0},
            {"tiny_s": 0.01, "big_s": 1.0},
            tol=0.15,
            min_base=0.001,
        )
        assert regs == [] and compared == 1

    def test_keys_glob_filters(self):
        regs, compared = compare(
            {"a_s": 1.0, "b_ratio": 1.0},
            {"a_s": 9.0, "b_ratio": 1.0},
            tol=0.15,
            keys="*ratio",
        )
        assert regs == [] and compared == 1

    def test_non_directional_keys_ignored(self):
        regs, compared = compare({"nodes": 100}, {"nodes": 900}, tol=0.15)
        assert regs == [] and compared == 0


class TestCheckAndCli:
    @pytest.fixture()
    def baseline(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"step_s": 1.0, "speedup": 2.0}))
        return str(path)

    def test_exit_zero_on_pass(self, baseline, tmp_path):
        hist = str(tmp_path / "h.jsonl")
        record("demo", {"step_s": 1.05, "speedup": 2.1}, history_path=hist)
        assert check(baseline, history_path=hist, tol=0.15) == 0
        assert main(["check", "--baseline", baseline, "--history", hist]) == 0

    def test_exit_one_on_synthetic_15pct_regression(self, baseline, tmp_path):
        hist = str(tmp_path / "h.jsonl")
        # 16% slower than baseline at the pinned 15% gate.
        record("demo", {"step_s": 1.16, "speedup": 2.0}, history_path=hist)
        assert (
            main(
                ["check", "--baseline", baseline, "--history", hist, "--tol", "0.15"]
            )
            == 1
        )

    def test_exit_two_when_nothing_comparable(self, baseline, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["check", "--baseline", baseline, "--history", missing]) == 2
        # History exists but holds a different bench.
        hist = str(tmp_path / "h.jsonl")
        record("other", {"step_s": 1.0}, history_path=hist)
        assert main(["check", "--baseline", baseline, "--history", hist]) == 2

    def test_current_file_overrides_history(self, baseline, tmp_path):
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"step_s": 5.0, "speedup": 2.0}))
        assert (
            main(["check", "--baseline", baseline, "--current", str(current)]) == 1
        )

    def test_append_and_list_subcommands(self, baseline, tmp_path, capsys):
        hist = str(tmp_path / "h.jsonl")
        assert main(["append", "--file", baseline, "--history", hist]) == 0
        assert main(["list", "--history", hist]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert latest_entry("demo", hist)["metrics"]["step_s"] == 1.0

    def test_check_output_names_regressed_keys(self, baseline, tmp_path, capsys):
        hist = str(tmp_path / "h.jsonl")
        record("demo", {"step_s": 2.0, "speedup": 2.0}, history_path=hist)
        assert main(["check", "--baseline", baseline, "--history", hist]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION step_s" in out
        assert "FAIL" in out

    def test_unknown_direction_suffix_exits_two_with_message(self, tmp_path, capsys):
        # Every baseline key uses a suffix the gate has no direction for:
        # the check must explain itself and exit 2, not blow up.
        baseline = tmp_path / "BENCH_odd.json"
        baseline.write_text(json.dumps({"step_qps": 100.0, "warm_ms": 3.0}))
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"step_qps": 90.0, "warm_ms": 4.0}))
        rc = main(
            ["check", "--baseline", str(baseline), "--current", str(current)]
        )
        out = capsys.readouterr().out
        assert rc == 2
        assert "direction suffix" in out
        assert "--list-keys" in out

    def test_keys_glob_onto_nondirectional_keys_exits_two(
        self, baseline, tmp_path, capsys
    ):
        baseline_path = tmp_path / "BENCH_mix.json"
        baseline_path.write_text(json.dumps({"step_s": 1.0, "nodes": 64}))
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"step_s": 1.0, "nodes": 64}))
        rc = main(
            [
                "check",
                "--baseline",
                str(baseline_path),
                "--current",
                str(current),
                "--keys",
                "nodes",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 2
        assert "direction suffix" in out

    def test_list_keys_prints_directions(self, baseline, capsys):
        assert main(["check", "--baseline", baseline, "--list-keys"]) == 0
        out = capsys.readouterr().out
        assert "step_s  [lower]" in out
        assert "speedup  [higher]" in out
        assert "2 metric key(s)" in out
