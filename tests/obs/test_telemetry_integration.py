"""End-to-end telemetry: traces are complete, valid, and free of side
effects on training (the zero-perturbation contract)."""

import numpy as np
import pytest

from repro.core import FedOMDConfig, FedOMDTrainer
from repro.federated.comm import KIND_MEANS, KIND_MOMENTS, KIND_WEIGHTS
from repro.graphs import load_dataset, louvain_partition
from repro.obs import TelemetrySession, read_jsonl, validate_events
from repro.reporting import render_report_file, render_run_report


@pytest.fixture(scope="module")
def parts():
    g = load_dataset("cora", seed=0, scale=0.12)
    return louvain_partition(g, 3, np.random.default_rng(0)).parts


CFG = dict(max_rounds=3, patience=50, hidden=16)


def run_fedomd(parts, num_workers=1, session=None):
    trainer = FedOMDTrainer(parts, FedOMDConfig(num_workers=num_workers, **CFG), seed=0)
    if session is not None:
        with session:
            hist = trainer.run()
    else:
        hist = trainer.run()
    return trainer, hist


@pytest.fixture(scope="module")
def baseline(parts):
    return run_fedomd(parts)


@pytest.fixture(scope="module")
def traced(parts):
    session = TelemetrySession(experiment="integration")
    trainer, hist = run_fedomd(parts, session=session)
    return trainer, hist, session


class TestZeroPerturbation:
    def test_telemetry_off_vs_on_serial(self, baseline, traced):
        assert baseline[1].metrics_equal(traced[1])

    def test_telemetry_on_parallel_matches_serial_off(self, parts, baseline):
        _, hist = run_fedomd(parts, num_workers=4, session=TelemetrySession())
        assert baseline[1].metrics_equal(hist)

    def test_round_record_timings_populated(self, traced):
        for rec in traced[1].records:
            assert rec.wall_time > 0
            assert rec.exchange_time > 0
            assert rec.train_time > 0
            assert rec.agg_time > 0
            assert rec.eval_time > 0
            total_phases = (
                rec.exchange_time + rec.train_time + rec.agg_time + rec.eval_time
            )
            assert rec.wall_time == pytest.approx(total_phases, rel=0.05)


class TestTraceCoverage:
    def test_trace_validates(self, traced):
        assert validate_events(traced[2].events()) > 0

    def test_every_round_has_every_phase(self, traced):
        events = traced[2].events()
        num_rounds = len(traced[1].records)
        for phase in ("round", "exchange", "train", "aggregate", "eval"):
            rounds = sorted(
                e["attrs"]["round"]
                for e in events
                if e.get("type") == "span" and e["name"] == phase
            )
            assert rounds == list(range(num_rounds)), phase

    def test_every_client_has_task_spans(self, traced, parts):
        events = traced[2].events()
        num_rounds = len(traced[1].records)
        for name in ("client.local_train", "client.upload_moments"):
            tasks = [
                e for e in events if e.get("type") == "span" and e["name"] == name
            ]
            clients = sorted({e["attrs"]["client"] for e in tasks})
            assert clients == list(range(len(parts))), name
            assert len(tasks) == num_rounds * len(parts), name

    def test_task_spans_nest_under_phases(self, traced):
        events = traced[2].events()
        by_id = {e["span_id"]: e for e in events if e.get("type") == "span"}
        for e in events:
            if e.get("type") == "span" and e["name"] == "client.local_train":
                parent = by_id[e["parent_id"]]
                assert parent["name"] == "train"

    def test_worker_threads_lose_no_task_spans(self, parts):
        session = TelemetrySession()
        _, hist = run_fedomd(parts, num_workers=4, session=session)
        tasks = [
            e
            for e in session.events()
            if e.get("type") == "span" and e["name"] == "client.local_train"
        ]
        assert len(tasks) == len(hist.records) * len(parts)

    def test_backward_and_forward_counters(self, traced):
        events = traced[2].events()
        backward = next(
            e
            for e in events
            if e.get("type") == "metric" and e["name"] == "autograd.backward_calls"
        )
        # One backward per client per round (local_epochs=1).
        assert backward["value"] == len(traced[1].records) * 3
        forwards = [
            e
            for e in events
            if e.get("type") == "metric" and e["name"] == "nn.forward_calls"
        ]
        assert forwards and all(e["value"] > 0 for e in forwards)
        assert any(e["tags"].get("module") == "OrthoGCN" for e in forwards)

    def test_cmd_gauges_per_layer_per_client(self, traced, parts):
        events = traced[2].events()
        gauges = [
            e
            for e in events
            if e.get("type") == "metric" and e["name"] == "fedomd.cmd_distance"
        ]
        seen = {(e["tags"]["client"], e["tags"]["layer"]) for e in gauges}
        num_hidden = traced[0].omd_config.num_hidden
        assert seen == {
            (c, l) for c in range(len(parts)) for l in range(num_hidden)
        }
        assert all(e["value"] >= 0 for e in gauges)


class TestCommKindSplit:
    def test_by_kind_sums_to_totals(self, traced):
        stats = traced[0].comm.snapshot()
        assert stats.by_kind, "kind-tagged metering recorded nothing"
        for field in ("uplink_bytes", "downlink_bytes", "uplink_messages", "downlink_messages"):
            split = sum(cell[field] for cell in stats.by_kind.values())
            assert split == getattr(stats, field), field

    def test_exchange_phases_split(self, traced):
        report = traced[0].statistics_bytes_last_round()
        p1 = report["statistics_phase1_means_bytes_measured"]
        p2 = report["statistics_phase2_moments_bytes_measured"]
        assert p1 > 0 and p2 > 0
        assert p1 + p2 == report["statistics_bytes_per_round_measured"]
        # Phase 2 moves K moments per mean: strictly more bytes.
        assert p2 > p1

    def test_delta_isolates_kinds(self, parts):
        trainer, _ = run_fedomd(parts)
        before = trainer.comm.snapshot()
        trainer.begin_round(999)
        delta = trainer.comm.snapshot() - before
        assert set(delta.by_kind) == {KIND_MEANS, KIND_MOMENTS}
        assert delta.kind_total_bytes(KIND_WEIGHTS) == 0

    def test_as_dict_carries_kind_columns(self, traced):
        d = traced[0].comm.snapshot().as_dict()
        assert f"{KIND_WEIGHTS}_uplink_bytes" in d
        assert f"{KIND_MEANS}_downlink_bytes" in d


class TestReportRenderer:
    def test_render_from_live_session(self, traced):
        out = render_run_report(traced[2].events())
        for needle in (
            "round timeline",
            "phase summary",
            "per-client",
            "communication breakdown",
            "client[0]",
            "weights",
            "moments",
        ):
            assert needle in out, needle

    def test_jsonl_round_trips_through_renderer(self, traced, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        traced[2].save(path)
        events = read_jsonl(path)
        validate_events(events)
        assert render_run_report(events) == render_run_report(traced[2].events())
        assert "communication breakdown" in render_report_file(path)

    def test_renderer_degrades_on_partial_traces(self):
        meta = {"type": "meta", "schema": "repro.obs/v1", "attrs": {}}
        out = render_run_report([meta])
        assert "no span events" in out
        assert "no comm.bytes metrics" in out


class TestCli:
    def test_telemetry_flag_and_report_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.__main__ import main
        from repro.experiments.registry import REGISTRY
        from repro.experiments.runner import ExperimentResult
        from repro.obs import get_tracer

        def fake_experiment(mode="quick", out_dir=None):
            with get_tracer().span("round", round=0):
                pass
            return ExperimentResult(name="fake", headers=["x"], rows=[["1"]])

        monkeypatch.setitem(REGISTRY, "faketel", fake_experiment)
        trace = str(tmp_path / "cli.jsonl")
        assert main(["faketel", "--mode", "smoke", "--telemetry", trace]) == 0
        events = read_jsonl(trace)
        validate_events(events)
        assert any(e.get("name") == "round" for e in events)

        capsys.readouterr()
        assert main(["report", trace]) == 0
        out = capsys.readouterr().out
        assert "telemetry run report" in out

    def test_report_requires_trace_path(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["report"])
