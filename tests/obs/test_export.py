"""Round-trips and validation for the v2 export schema additions:
profile events, open spans, and null-quantile histograms."""

import pytest

from repro.obs.export import (
    COMPATIBLE_SCHEMAS,
    SCHEMA_VERSION,
    read_jsonl,
    validate_event,
    validate_events,
    write_jsonl,
)


class TestSchemaCompat:
    def test_current_is_v2(self):
        assert SCHEMA_VERSION == "repro.obs/v2"

    @pytest.mark.parametrize("schema", COMPATIBLE_SCHEMAS)
    def test_both_schemas_validate(self, schema):
        validate_event({"type": "meta", "schema": schema, "attrs": {}})

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_event({"type": "meta", "schema": "repro.obs/v99", "attrs": {}})


class TestProfileEvents:
    def test_valid_profile_event(self):
        validate_event(
            {"type": "profile", "folded": {"round;train": 1.5, "round": 0.0}}
        )

    def test_missing_folded_rejected(self):
        with pytest.raises(ValueError, match="folded"):
            validate_event({"type": "profile"})

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_event({"type": "profile", "folded": {"round": -1.0}})

    def test_empty_stack_key_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_event({"type": "profile", "folded": {"": 1.0}})

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        events = [
            {"type": "meta", "schema": SCHEMA_VERSION, "attrs": {"profile": True}},
            {"type": "profile", "folded": {"round;train;client.local_train": 0.25}},
        ]
        write_jsonl(path, events)
        back = read_jsonl(path)
        assert validate_events(back) == 2
        assert back[1]["folded"] == events[1]["folded"]


def open_span(**over):
    e = {
        "type": "span",
        "name": "round",
        "span_id": 7,
        "parent_id": None,
        "t_start": 1.0,
        "t_end": None,
        "dur": 0.5,
        "open": True,
        "thread": "MainThread",
        "attrs": {},
    }
    e.update(over)
    return e


class TestOpenSpans:
    def test_open_span_validates(self):
        validate_event(open_span())

    def test_open_span_with_t_end_rejected(self):
        with pytest.raises(ValueError, match="t_end null"):
            validate_event(open_span(t_end=2.0))

    def test_closed_span_still_needs_numeric_t_end(self):
        with pytest.raises(ValueError, match="t_end"):
            validate_event(open_span(open=False))

    def test_open_span_round_trips(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        events = [
            {"type": "meta", "schema": SCHEMA_VERSION, "attrs": {}},
            open_span(),
        ]
        write_jsonl(path, events)
        back = read_jsonl(path)
        validate_events(back)
        assert back[1]["open"] is True and back[1]["t_end"] is None


class TestNullQuantileHistograms:
    def test_empty_histogram_event_round_trips(self, tmp_path):
        """An untouched histogram dumps null min/max/quantiles — that
        must serialize as JSON null and validate back (never NaN)."""
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.histogram("executor.queue_wait_s")  # created, never observed
        path = str(tmp_path / "t.jsonl")
        events = [{"type": "meta", "schema": SCHEMA_VERSION, "attrs": {}}]
        events += reg.events()
        write_jsonl(path, events)
        raw = open(path).read()
        assert "NaN" not in raw
        back = read_jsonl(path)
        validate_events(back)
        hist = back[1]
        assert hist["count"] == 0
        assert hist["min"] is None and hist["max"] is None
        assert all(v is None for v in hist["quantiles"].values())

    def test_report_renders_empty_histogram(self):
        """The run report must not crash on null quantiles."""
        from repro.obs.metrics import MetricsRegistry
        from repro.reporting.telemetry import queue_wait_summary

        reg = MetricsRegistry()
        reg.histogram("executor.queue_wait_s")
        out = queue_wait_summary(reg.events())
        assert "n=0" in out
