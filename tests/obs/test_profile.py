"""Profiler tests: folded stacks, memory high-water, ProfileSession.

The load-bearing assertion is zero perturbation: a fully profiled
federated run (cost model + memory profiler + tracing) produces a
training history ``metrics_equal`` to an unprofiled one.
"""

import numpy as np
import pytest

from repro.core import FedOMDConfig, FedOMDTrainer
from repro.graphs import load_dataset, louvain_partition
from repro.obs import (
    MemoryProfiler,
    ProfileSession,
    folded_stacks,
    get_collector,
    read_jsonl,
    top_frames,
    validate_events,
    write_folded,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def span(name, sid, parent, t0, t1, **attrs):
    return {
        "type": "span",
        "name": name,
        "span_id": sid,
        "parent_id": parent,
        "t_start": t0,
        "t_end": t1,
        "dur": t1 - t0,
        "thread": "t",
        "attrs": attrs,
    }


class TestFoldedStacks:
    def test_self_time_subtracts_children(self):
        events = [
            span("round", 1, None, 0.0, 1.0),
            span("train", 2, 1, 0.1, 0.7),
            span("eval", 3, 1, 0.7, 0.9),
        ]
        folded = folded_stacks(events)
        assert folded["round;train"] == pytest.approx(0.6)
        assert folded["round;eval"] == pytest.approx(0.2)
        # round's self time: 1.0 − (0.6 + 0.2).
        assert folded["round"] == pytest.approx(0.2)

    def test_identical_paths_merge(self):
        events = [
            span("round", 1, None, 0.0, 1.0),
            span("round", 2, None, 1.0, 3.0),
        ]
        assert folded_stacks(events) == {"round": pytest.approx(3.0)}

    def test_orphan_parent_roots_the_stack(self):
        events = [span("task", 5, 99, 0.0, 0.5)]
        assert folded_stacks(events) == {"task": pytest.approx(0.5)}

    def test_self_time_clamped_nonnegative(self):
        # Child outlives parent (worker task past the submitting span).
        events = [
            span("train", 1, None, 0.0, 0.1),
            span("task", 2, 1, 0.0, 0.5),
        ]
        folded = folded_stacks(events)
        assert folded["train"] == 0.0
        assert folded["train;task"] == pytest.approx(0.5)

    def test_non_span_and_open_partial_events_handled(self):
        events = [
            {"type": "metric", "name": "x"},
            span("a", 1, None, 0.0, 1.0),
            # open span: dur present (elapsed), t_end null — still folded.
            {
                "type": "span",
                "name": "b",
                "span_id": 2,
                "parent_id": 1,
                "t_start": 0.2,
                "t_end": None,
                "dur": 0.3,
                "open": True,
                "attrs": {},
            },
        ]
        folded = folded_stacks(events)
        assert folded["a;b"] == pytest.approx(0.3)

    def test_write_folded_integer_microseconds(self, tmp_path):
        events = [
            span("round", 1, None, 0.0, 1.0),
            span("train", 2, 1, 0.25, 1.0),
        ]
        path = str(tmp_path / "out" / "profile.folded")
        assert write_folded(path, events) == 2
        lines = open(path).read().splitlines()
        assert lines == ["round 250000", "round;train 750000"]

    def test_top_frames_ordering(self):
        events = [
            span("slow", 1, None, 0.0, 2.0),
            span("fast", 2, None, 2.0, 2.5),
        ]
        frames = top_frames(events, k=1)
        assert frames == [("slow", pytest.approx(2.0))]


class TestMemoryProfiler:
    def test_phase_peaks_harvested(self):
        tracer = Tracer()
        prof = MemoryProfiler()
        prof.start()
        tracer.add_listener(prof)
        try:
            with tracer.span("train"):
                np.zeros(200_000)  # ~1.6 MB transient
            with tracer.span("not_a_phase"):
                np.zeros(200_000)
        finally:
            tracer.remove_listener(prof)
            prof.stop()
        assert prof.peaks.get("train", 0) > 1_000_000
        assert "not_a_phase" not in prof.peaks

    def test_max_across_rounds_kept(self):
        tracer = Tracer()
        prof = MemoryProfiler()
        prof.start()
        tracer.add_listener(prof)
        try:
            with tracer.span("eval"):
                np.zeros(400_000)
            big = prof.peaks["eval"]
            with tracer.span("eval"):
                pass  # tiny round must not shrink the high-water mark
        finally:
            tracer.remove_listener(prof)
            prof.stop()
        assert prof.peaks["eval"] >= big

    def test_flush_gauges(self):
        reg = MetricsRegistry()
        prof = MemoryProfiler()
        prof.peaks = {"train": 123, "eval": 456}
        prof.flush_gauges(reg)
        assert reg.get("profile.mem_peak_bytes", phase="train").value == 123
        assert reg.get("profile.mem_peak_bytes", phase="eval").value == 456

    def test_idempotent_start_stop_and_foreign_tracemalloc(self):
        import tracemalloc

        tracemalloc.start()
        try:
            prof = MemoryProfiler()
            prof.start()
            prof.start()
            prof.stop()
            # Someone else armed tracemalloc: stop() must not kill it.
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


@pytest.fixture(scope="module")
def parts():
    g = load_dataset("cora", seed=0, scale=0.12)
    return louvain_partition(g, 3, np.random.default_rng(0)).parts


CFG = dict(max_rounds=3, patience=50, hidden=16)


def run_fedomd(parts):
    trainer = FedOMDTrainer(parts, FedOMDConfig(**CFG), seed=0)
    return trainer, trainer.run()


class TestProfileSessionEndToEnd:
    @pytest.fixture(scope="class")
    def profiled(self, parts, tmp_path_factory):
        out = tmp_path_factory.mktemp("prof")
        session = ProfileSession(
            jsonl_path=str(out / "trace.jsonl"),
            folded_path=str(out / "profile.folded"),
            experiment="unit",
        )
        with session:
            trainer, hist = run_fedomd(parts)
        return session, hist, out

    def test_profiling_does_not_perturb_training(self, parts, profiled):
        _, hist_profiled, _ = profiled
        _, hist_plain = run_fedomd(parts)
        assert hist_plain.metrics_equal(hist_profiled)

    def test_collector_uninstalled_after_exit(self, profiled):
        assert get_collector() is None

    def test_jsonl_trace_validates_and_has_new_event_kinds(self, profiled):
        session, _, out = profiled
        events = read_jsonl(str(out / "trace.jsonl"))
        validate_events(events)
        assert any(e["type"] == "profile" for e in events)
        names = {e.get("name") for e in events if e.get("type") == "metric"}
        assert "cost.flops" in names
        assert "cost.bytes" in names
        assert "profile.mem_peak_bytes" in names
        assert "kernel.csr_cache" in names

    def test_folded_file_written(self, profiled):
        _, _, out = profiled
        lines = (out / "profile.folded").read_text().splitlines()
        assert lines
        stacks = {line.rsplit(" ", 1)[0] for line in lines}
        assert any(s.startswith("round;train") for s in stacks)
        for line in lines:
            int(line.rsplit(" ", 1)[1])  # integer microseconds

    def test_cost_attributed_to_phases_and_layers(self, profiled):
        session, _, _ = profiled
        events = session.events()
        flops = [
            e for e in events if e.get("type") == "metric" and e["name"] == "cost.flops"
        ]
        phases = {e["tags"]["phase"] for e in flops}
        assert {"train", "eval", "exchange"} <= phases
        assert any(e["tags"].get("backend") for e in flops), "spmm backend tag missing"
        assert any(e["tags"]["layer"] != "-" for e in flops), "layer scopes missing"

    def test_spmm_flops_match_formula(self, profiled, parts):
        """Train-phase fwd spmm FLOPs are an exact multiple of 2·nnz·d."""
        session, hist, _ = profiled
        events = session.events()
        total = sum(
            e["value"]
            for e in events
            if e.get("type") == "metric"
            and e["name"] == "cost.flops"
            and e["tags"].get("op") == "spmm"
            and e["tags"].get("dir") == "fwd"
        )
        assert total > 0 and total % 2 == 0

    def test_report_renders_profile_sections(self, profiled):
        session, _, _ = profiled
        report = session.report()
        for needle in (
            "cost model (per phase)",
            "spmm backend attribution",
            "memory high-water",
            "top",
            "flops/byte",
        ):
            assert needle in report, needle

    def test_memory_gauges_cover_phases(self, profiled):
        session, _, _ = profiled
        events = session.events()
        phases = {
            e["tags"]["phase"]
            for e in events
            if e.get("type") == "metric" and e["name"] == "profile.mem_peak_bytes"
        }
        assert phases == {"exchange", "train", "aggregate", "eval"}

    def test_memory_opt_out(self, parts):
        session = ProfileSession(memory=False)
        with session:
            pass
        assert session.memory is None
        assert all(
            e.get("name") != "profile.mem_peak_bytes" for e in session.events()
        )
