"""Tests for counters, gauges, and streaming-histogram quantiles."""

import threading

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    StreamingHistogram,
    get_registry,
    metric_key,
    set_registry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes", kind="weights")
        c.inc(10)
        c.inc(5)
        assert c.value == 15

    def test_same_name_same_tags_shared(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1).inc()
        reg.counter("x", a=1).inc()
        assert reg.counter("x", a=1).value == 2

    def test_different_tags_distinct(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1).inc()
        assert reg.counter("x", a=2).value == 0

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("queue")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5
        assert g.writes == 2

    def test_metric_key_canonical(self):
        assert metric_key("n", {}) == "n"
        assert metric_key("n", {"b": 2, "a": 1}) == "n{a=1,b=2}"

    def test_concurrent_counter_increments_lose_nothing(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        n_threads, n_iters = 8, 500

        def work():
            for _ in range(n_iters):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_iters


class TestStreamingHistogram:
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.uniform(0.0, 1.0, n),
            lambda rng, n: rng.normal(0.0, 1.0, n),
            lambda rng, n: rng.exponential(2.0, n),
        ],
    )
    def test_quantiles_match_numpy_percentile(self, sampler):
        rng = np.random.default_rng(7)
        data = sampler(rng, 20_000)
        h = StreamingHistogram("x")
        for v in data:
            h.observe(v)
        span = float(data.max() - data.min())
        for q in (0.5, 0.95, 0.99):
            est = h.quantile(q)
            ref = float(np.percentile(data, 100 * q))
            assert abs(est - ref) <= 0.02 * span, f"q={q}: {est} vs {ref}"

    def test_small_sample_is_exact(self):
        h = StreamingHistogram("x")
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_count_sum_min_max(self):
        h = StreamingHistogram("x")
        for v in [1.0, 2.0, 3.0]:
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_is_nan(self):
        h = StreamingHistogram("x")
        assert np.isnan(h.quantile(0.5))
        assert np.isnan(h.mean)

    def test_untracked_quantile_raises(self):
        h = StreamingHistogram("x")
        h.observe(1.0)
        with pytest.raises(KeyError):
            h.quantile(0.25)

    def test_dump_shape(self):
        h = StreamingHistogram("x")
        h.observe(1.0)
        d = h.dump()
        assert d["count"] == 1
        assert set(d["quantiles"]) == {"0.5", "0.95", "0.99"}


class TestRegistryDefaults:
    def test_default_is_null_and_absorbs_writes(self):
        reg = get_registry()
        assert reg is NULL_REGISTRY
        assert not reg.enabled
        reg.counter("x").inc(100)
        reg.gauge("y").set(1.0)
        reg.histogram("z").observe(2.0)
        assert reg.names() == []
        assert reg.events() == []

    def test_set_and_restore(self):
        live = MetricsRegistry()
        old = set_registry(live)
        try:
            assert get_registry() is live
            get_registry().counter("hit").inc()
            assert live.counter("hit").value == 1
        finally:
            set_registry(old)
        assert get_registry() is old

    def test_events_export_form(self):
        reg = MetricsRegistry()
        reg.counter("c", kind="weights").inc(7)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        events = reg.events()
        assert len(events) == 3
        kinds = {e["metric"] for e in events}
        assert kinds == {"counter", "gauge", "histogram"}
        counter = next(e for e in events if e["metric"] == "counter")
        assert counter["value"] == 7
        assert counter["tags"] == {"kind": "weights"}


class TestEmptyHistogram:
    """An untouched histogram answers 'nothing observed', not garbage."""

    def test_quantile_is_nan(self):
        h = StreamingHistogram("h")
        assert np.isnan(h.quantile(0.5))
        assert np.isnan(h.quantile(0.95))

    def test_min_max_mean_are_nan(self):
        h = StreamingHistogram("h")
        assert np.isnan(h.min) and np.isnan(h.max) and np.isnan(h.mean)
        assert h.count == 0 and h.sum == 0.0

    def test_dump_uses_null_not_inf(self):
        d = StreamingHistogram("h").dump()
        assert d["min"] is None and d["max"] is None
        assert all(v is None for v in d["quantiles"].values())

    def test_untracked_quantile_still_raises(self):
        with pytest.raises(KeyError):
            StreamingHistogram("h").quantile(0.42)

    def test_first_observation_flips_semantics(self):
        h = StreamingHistogram("h")
        h.observe(3.0)
        assert h.min == h.max == h.quantile(0.5) == 3.0
        d = h.dump()
        assert d["min"] == 3.0 and d["quantiles"]["0.5"] == 3.0
