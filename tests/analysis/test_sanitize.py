"""Runtime-sanitizer tests: autograd guards, lock probes, bitwise parity.

The three satellite requirements are all here: in-place mutation raises
with the offending op named; the NaN tripwire catches corruption seeded
through ``repro.federated.faults``; and sanitizer-on histories are
bitwise identical to sanitizer-off (pinned to the golden digest).
"""

import threading

import numpy as np
import pytest

from repro.analysis.sanitize import (
    AutogradSanitizer,
    DtypeDriftError,
    GuardedCommStats,
    GuardedDict,
    InplaceMutationError,
    LockViolationError,
    NonFiniteValueError,
    OwnedLock,
    SanitizerSession,
    install_comm_probe,
    install_registry_probe,
)
from repro.autograd import Tensor, get_tensor_sanitizer
from repro.core import FedOMDConfig, FedOMDTrainer
from repro.federated.comm import Communicator
from repro.federated.faults import FaultPlan
from repro.graphs import load_dataset, louvain_partition
from repro.obs import MetricsRegistry, NULL_REGISTRY

from tests.federated.test_golden_history import GOLDEN_DIGEST, digest


@pytest.fixture
def session():
    with SanitizerSession() as s:
        yield s


def small_parts():
    g = load_dataset("cora", seed=0, scale=0.12)
    return louvain_partition(g, 3, np.random.default_rng(0)).parts


# ----------------------------------------------------------------------
# autograd sanitizer
# ----------------------------------------------------------------------
class TestAutogradSanitizer:
    def test_inplace_mutation_names_offending_op(self, session):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a * 3.0
        a.data[0, 0] = 99.0
        with pytest.raises(InplaceMutationError, match="op `mul`"):
            out.sum().backward()

    def test_clean_backward_passes(self, session):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        ((a * 3.0) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 18.0 * np.ones((2, 2)))

    def test_nan_forward_names_op(self, session):
        a = Tensor(np.array([1.0, np.nan]), requires_grad=True)
        with pytest.raises(NonFiniteValueError, match="op `exp`"):
            a.exp()

    def test_inf_forward_trips(self, session):
        a = Tensor(np.array([0.0]), requires_grad=True)
        with np.errstate(divide="ignore"):
            with pytest.raises(NonFiniteValueError, match="Inf"):
                1.0 / a

    def test_nan_gradient_trips_with_provenance(self, session):
        # sqrt'(0) = inf: the forward output is finite, the gradient isn't.
        a = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        out = a.sqrt()
        with np.errstate(divide="ignore"):
            with pytest.raises(NonFiniteValueError, match="backward of op `sqrt`"):
                out.sum().backward()

    def test_dtype_drift_detected(self):
        san = AutogradSanitizer()
        bad = Tensor(np.ones(3))
        bad.data = bad.data.astype(np.float32)
        with pytest.raises(DtypeDriftError, match="float32"):
            san.after_op(bad, (), "cast", track=False)

    def test_no_guard_recorded_when_untracked(self, session):
        from repro.autograd import no_grad

        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert out._guard is None

    def test_session_installs_and_uninstalls(self):
        assert get_tensor_sanitizer() is None
        with SanitizerSession() as s:
            assert get_tensor_sanitizer() is s.autograd
        assert get_tensor_sanitizer() is None

    def test_uninstall_on_error_path(self):
        s = SanitizerSession().install()
        try:
            assert get_tensor_sanitizer() is s.autograd
        finally:
            s.uninstall()
        assert get_tensor_sanitizer() is None

    def test_double_install_rejected(self):
        with SanitizerSession() as s:
            with pytest.raises(RuntimeError, match="already installed"):
                s.install()


# ----------------------------------------------------------------------
# concurrency probe
# ----------------------------------------------------------------------
class TestOwnedLock:
    def test_ownership_tracking(self):
        lock = OwnedLock()
        assert not lock.held_by_me
        with lock:
            assert lock.held_by_me
        assert not lock.held_by_me

    def test_other_thread_not_owner(self):
        lock = OwnedLock()
        seen = {}
        lock.acquire()
        t = threading.Thread(target=lambda: seen.setdefault("held", lock.held_by_me))
        t.start()
        t.join()
        lock.release()
        assert seen["held"] is False


class TestCommProbe:
    def test_unlocked_mutation_raises(self):
        comm = Communicator(num_clients=2)
        install_comm_probe(comm)
        with pytest.raises(LockViolationError, match="CommStats.rounds"):
            comm.stats.rounds += 1

    def test_locked_mutation_passes_and_counters_exact(self):
        comm = Communicator(num_clients=2)
        install_comm_probe(comm)
        comm.broadcast({"w": np.zeros(4)})
        comm.end_round()
        assert comm.stats.rounds == 1
        assert comm.stats.downlink_bytes == 2 * 32

    def test_probe_idempotent(self):
        comm = Communicator(num_clients=2)
        install_comm_probe(comm)
        stats = comm.stats
        install_comm_probe(comm)
        assert comm.stats is stats

    def test_snapshot_returns_plain_stats(self):
        comm = Communicator(num_clients=2)
        install_comm_probe(comm)
        snap = comm.snapshot()
        assert not isinstance(snap, GuardedCommStats)
        snap.rounds += 1  # plain copies stay freely mutable

    def test_stats_delta_still_works(self):
        comm = Communicator(num_clients=2)
        install_comm_probe(comm)
        before = comm.snapshot()
        comm.broadcast({"w": np.zeros(4)})
        delta = comm.snapshot() - before
        assert delta.downlink_bytes == 2 * 32


class TestRegistryProbe:
    def test_unlocked_insert_raises(self):
        reg = MetricsRegistry()
        install_registry_probe(reg)
        with pytest.raises(LockViolationError, match="boom"):
            reg._metrics["boom"] = 1

    def test_locked_instrument_creation_passes(self):
        reg = MetricsRegistry()
        install_registry_probe(reg)
        reg.counter("ok").inc()
        assert reg.counter("ok").value == 1

    def test_existing_instruments_preserved(self):
        reg = MetricsRegistry()
        reg.counter("pre").inc(5)
        install_registry_probe(reg)
        assert reg.counter("pre").value == 5

    def test_null_registry_skipped(self):
        install_registry_probe(NULL_REGISTRY)  # must not blow up
        assert not isinstance(getattr(NULL_REGISTRY, "_metrics", None), GuardedDict)

    def test_probe_idempotent(self):
        reg = MetricsRegistry()
        install_registry_probe(reg)
        table = reg._metrics
        install_registry_probe(reg)
        assert reg._metrics is table


# ----------------------------------------------------------------------
# trainer integration
# ----------------------------------------------------------------------
class TestTrainerIntegration:
    def test_nan_tripwire_catches_fault_corruption(self):
        # Every upload corrupted to NaN, quarantine off: the poisoned
        # global model reaches round 1's forward pass, where the
        # sanitizer names the first op that went non-finite.
        plan = FaultPlan.from_spec("corrupt=1.0:mode=nan", seed=0)
        cfg = FedOMDConfig(
            max_rounds=3,
            patience=50,
            hidden=16,
            sanitize=True,
            quarantine_nonfinite=False,
        )
        trainer = FedOMDTrainer(small_parts(), cfg, seed=0, faults=plan)
        with pytest.raises(NonFiniteValueError, match="op `"):
            trainer.run()
        # The try/finally in run() must not leak the sanitizer.
        assert get_tensor_sanitizer() is None

    def test_quarantine_defuses_the_same_corruption(self):
        # Same fault plan, quarantine on: NaN uploads never reach FedAvg,
        # so the sanitized run completes.
        plan = FaultPlan.from_spec("corrupt=1.0:mode=nan", seed=0)
        cfg = FedOMDConfig(max_rounds=2, patience=50, hidden=16, sanitize=True)
        history = FedOMDTrainer(small_parts(), cfg, seed=0, faults=plan).run()
        assert len(history) == 2

    def test_sanitized_history_bitwise_identical_to_golden(self):
        cfg = FedOMDConfig(max_rounds=3, patience=50, hidden=16, sanitize=True)
        history = FedOMDTrainer(small_parts(), cfg, seed=0).run()
        assert digest(history) == GOLDEN_DIGEST

    def test_sanitized_parallel_run_bitwise_identical_to_golden(self):
        # num_workers=2 arms the concurrency probes too; the trajectory
        # must still match the serial unsanitized golden digest.
        cfg = FedOMDConfig(
            max_rounds=3, patience=50, hidden=16, sanitize=True, num_workers=2
        )
        history = FedOMDTrainer(small_parts(), cfg, seed=0).run()
        assert digest(history) == GOLDEN_DIGEST

    def test_serial_run_leaves_comm_unprobed(self):
        cfg = FedOMDConfig(max_rounds=1, patience=50, hidden=16, sanitize=True)
        trainer = FedOMDTrainer(small_parts(), cfg, seed=0)
        assert not isinstance(trainer.comm.stats, GuardedCommStats)

    def test_parallel_run_probes_comm(self):
        cfg = FedOMDConfig(
            max_rounds=1, patience=50, hidden=16, sanitize=True, num_workers=2
        )
        trainer = FedOMDTrainer(small_parts(), cfg, seed=0)
        assert isinstance(trainer.comm.stats, GuardedCommStats)


# ----------------------------------------------------------------------
# protocol monitor (runtime RL007/RL008)
# ----------------------------------------------------------------------
class TestProtocolMonitor:
    def _monitor(self):
        from repro.analysis.sanitize import ProtocolMonitor

        return ProtocolMonitor()

    def test_full_golden_round_serial_accepted(self):
        m = self._monitor()
        for direction, kind in [
            ("down", "weights"),
            ("up", "means"),
            ("down", "means"),
            ("up", "moments"),
            ("down", "moments"),
            ("up", "weights"),
        ]:
            m.on_event(direction, kind, np.zeros(2))
        m.on_round_end()
        m.on_event("down", "weights", np.zeros(2))  # next round

    def test_partial_participation_may_skip_phases(self):
        m = self._monitor()
        m.on_event("down", "weights", None)
        m.on_event("up", "moments", np.zeros(2))  # means phase skipped
        m.on_event("down", "weights", None)  # no survivors: no weight upload

    def test_swapped_means_moments_rejected(self):
        from repro.analysis.sanitize import ProtocolViolationError

        m = self._monitor()
        m.on_event("up", "moments", np.zeros(2))
        with pytest.raises(ProtocolViolationError, match="upload means"):
            m.on_event("up", "means", np.zeros(2))

    def test_end_round_resets_the_phase(self):
        m = self._monitor()
        m.on_event("up", "moments", np.zeros(2))
        m.on_round_end()
        m.on_event("up", "means", np.zeros(2))  # fresh round: legal

    def test_untagged_traffic_carries_no_phase(self):
        m = self._monitor()
        m.on_event("up", "moments", np.zeros(2))
        m.on_event("up", "other", np.zeros(2))
        m.on_event("down", "other", None)

    def test_violation_through_communicator_leaves_stats_unmetered(self):
        from repro.analysis.sanitize import ProtocolViolationError

        comm = Communicator(num_clients=2)
        s = SanitizerSession()
        s.attach_communicator(comm)
        comm.send_to_server(0, np.zeros(3), kind="moments")
        with pytest.raises(ProtocolViolationError):
            comm.send_to_server(0, np.zeros(3), kind="means")
        # _notify runs before metering: the illegal transfer moved nothing.
        assert comm.stats.uplink_bytes == 24
        assert comm.stats.uplink_messages == 1

    def test_privacy_tripwire_catches_aliasing_upload(self):
        from repro.analysis.sanitize import PrivacyEscapeError

        m = self._monitor()
        x = np.arange(12.0).reshape(3, 4)
        m.register_private_array("client0.graph.x", x)
        m.on_event("up", "means", x.mean(axis=0))  # statistic: fine
        with pytest.raises(PrivacyEscapeError, match="client0.graph.x"):
            m.on_event("up", "means", {"h": [x[1:]]})  # a view, nested

    def test_downlink_never_privacy_checked(self):
        m = self._monitor()
        x = np.zeros(4)
        m.register_private_array("x", x)
        m.on_event("down", "weights", x)  # server→client may carry anything


class TestRuntimePrivacyEscape:
    def test_injected_raw_feature_upload_caught(self):
        # The runtime counterpart of the RL007 fixture: a trainer whose
        # round uploads a party's raw feature matrix trips the monitor.
        from repro.analysis.sanitize import PrivacyEscapeError

        class LeakyTrainer(FedOMDTrainer):
            def begin_round(self, round_idx):
                c = self.clients[0]
                self.comm.send_to_server(c.cid, c.graph.x, kind="means")
                super().begin_round(round_idx)

        cfg = FedOMDConfig(max_rounds=1, patience=50, hidden=16, sanitize=True)
        trainer = LeakyTrainer(small_parts(), cfg, seed=0)
        with pytest.raises(PrivacyEscapeError, match="graph.x"):
            trainer.run()

    def test_statistics_only_run_stays_clean(self):
        cfg = FedOMDConfig(max_rounds=1, patience=50, hidden=16, sanitize=True)
        history = FedOMDTrainer(small_parts(), cfg, seed=0).run()
        assert len(history) == 1


# ----------------------------------------------------------------------
# lock-order recorder (runtime RL009)
# ----------------------------------------------------------------------
class TestLockOrderRecorder:
    def _pair(self):
        from repro.analysis.sanitize import LockOrderRecorder

        rec = LockOrderRecorder()
        a = OwnedLock(name="a", recorder=rec)
        b = OwnedLock(name="b", recorder=rec)
        return rec, a, b

    def test_consistent_nesting_accepted(self):
        _, a, b = self._pair()
        for _ in range(2):
            with a:
                with b:
                    pass

    def test_opposite_nesting_raises(self):
        from repro.analysis.sanitize import LockOrderError

        _, a, b = self._pair()
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="cycle"):
                a.acquire()

    def test_failed_acquisition_releases_the_lock(self):
        from repro.analysis.sanitize import LockOrderError

        _, a, b = self._pair()
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()
        # The poisoned acquire must not leave `a` held.
        assert a.acquire(blocking=False)
        a.release()

    def test_reacquire_same_lock_order_after_release(self):
        _, a, b = self._pair()
        with a:
            with b:
                pass
        with a:
            pass
        with a:
            with b:
                pass

    def test_session_wires_recorder_into_probes(self):
        s = SanitizerSession(concurrency=True)
        comm = Communicator(num_clients=2)
        s.attach_communicator(comm)
        assert comm._monitor is s.protocol
        assert comm._lock._recorder is s.lock_order
