"""RL015 fixture: ops the cost oracle cannot price."""
import numpy as np

from repro import nn
from repro.autograd import Tensor, mystery_op  # signature never declared


class Unpriced(nn.Module):
    def __init__(self, in_features, num_classes, rng):
        super().__init__()
        self.lin = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x):
        return mystery_op(self.lin(x))  # VIOLATION RL015


def mint_raw_node(a):
    out = np.tanh(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out * out))

    return Tensor._make(out, (a,), backward, "mystery_tanh")  # VIOLATION RL015


def mint_raw_node_suppressed(a):
    out = np.tanh(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out * out))

    return Tensor._make(out, (a,), backward, "mystery_tanh")  # repro-lint: disable=RL015
