"""RL010 fixture: worker-thread field writes racing engine-thread reads."""
import threading


class Engine:
    def __init__(self):
        self.lock = threading.Lock()
        self.pool = Pool()  # noqa: F821 — never executed, AST only
        self.progress = 0
        self.safe_count = 0
        self.barrier_flag = 0
        self.noisy = 0

    def launch(self, items):
        def task(item):
            self.progress += 1  # VIOLATION: unlocked write on worker thread
            with self.lock:
                self.safe_count += 1  # ok: common lock with report()
            # guarded-by(round-barrier)
            self.barrier_flag = item  # ok: declared discipline
            self.noisy += 1  # repro-lint: disable=RL010
            return item

        return self.pool.map(task, items)

    def report(self):
        with self.lock:
            ok = self.safe_count
        return self.progress + ok + self.barrier_flag + self.noisy
