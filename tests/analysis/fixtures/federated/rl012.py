"""RL012 fixture: aggregating reports in heap-pop (schedule) order."""
import heapq


def fedavg(states, weights=None):
    return states[0]


def drain(heap):
    out = []
    while heap:
        _, item = heapq.heappop(heap)
        out.append(item)
    return out


def racy_aggregate(heap):
    arrivals = drain(heap)
    return fedavg(arrivals)  # VIOLATION: pop-ordered float reduction


def canonical_aggregate(heap):
    arrivals = drain(heap)
    return fedavg(sorted(arrivals))  # ok: canonical order

def suppressed_aggregate(heap):
    arrivals = drain(heap)
    return fedavg(arrivals)  # repro-lint: disable=RL012
