"""Fixture: RL006 must fire on bare len() divisors in aggregation code."""


def bad_average(states):
    return sum(states) / len(states)  # VIOLATION rl006, line 5


def ok_average(states):
    n_contributing = len(states)
    return sum(states) / n_contributing


def suppressed(states):
    return sum(states) / len(states)  # repro-lint: disable=RL006
