"""Fixture: RL002 must fire on id()-keyed containers, and only there."""

_CACHE = {}
_SEEN = set()


def bad_store(graph, value):
    _CACHE[id(graph)] = value  # VIOLATION rl002, line 8


def bad_lookup(graph):
    return id(graph) in _SEEN  # VIOLATION rl002, line 12


def bad_add(graph):
    _SEEN.add(id(graph))  # VIOLATION rl002, line 16


def ok(graph, value):
    _CACHE[graph] = value
    return graph in _SEEN


def suppressed(graph, value):
    _CACHE[id(graph)] = value  # repro-lint: disable=RL002
