"""Fixture: RL005 must fire on unlocked shared-state mutation."""
import threading


class SharedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.items = []

    def bad_increment(self) -> None:
        self.count += 1  # VIOLATION rl005, line 12

    def bad_append(self, x) -> None:
        self.items.append(x)  # VIOLATION rl005, line 15

    def ok_locked(self) -> None:
        with self._lock:
            self.count += 1
            self.items.append(self.count)

    def ok_annotated(self) -> None:
        # guarded-by(caller holds self._lock via ok_locked)
        self.count += 1

    def suppressed(self) -> None:
        self.count += 1  # repro-lint: disable=RL005


class Unlocked:
    """No _lock attribute: RL005 does not apply at all."""

    def __init__(self) -> None:
        self.count = 0

    def increment(self) -> None:
        self.count += 1
