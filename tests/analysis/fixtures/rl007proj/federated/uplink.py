"""RL007 fixture: raw party tensors vs. statistics at the uplink.

The pinned VIOLATION lines are asserted by tests/analysis/test_rules.py.
"""

from core.features import feature_mean, raw_rows


def upload_mean(comm, graph):
    stat = graph.x.mean(axis=0)
    return comm.send_to_server(0, stat)  # clean: sanitized by .mean()


def upload_helper_mean(comm, g):
    return comm.send_to_server(0, feature_mean(g))  # clean across files


def upload_raw(comm, graph):
    return comm.send_to_server(0, graph.x)  # VIOLATION: raw features


def upload_helper_leak(comm, g):
    rows = raw_rows(g)
    return comm.send_to_server(1, rows)  # VIOLATION: leak through helper


def upload_allowlisted(comm, graph):
    # privacy-ok(fixture: vetted aggregate masquerading as raw labels)
    return comm.send_to_server(0, graph.y)


def upload_suppressed(comm, graph):
    return comm.send_to_server(0, graph.adj)  # repro-lint: disable=RL007
