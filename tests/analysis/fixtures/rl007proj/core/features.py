"""Helper module: taint must cross this file into the uplink sites."""


def raw_rows(g):
    """Returns the party's raw feature rows untouched."""
    return g.x


def feature_mean(g):
    """A legitimate statistic: per-dimension mean over local rows."""
    return g.x.mean(axis=0)
