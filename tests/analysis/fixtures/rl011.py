"""RL011 fixture: arithmetic moving a clock reading backwards."""
import heapq


def schedule(clock, heap, delay):
    start = clock.now()
    elapsed = clock.now() - start  # ok: a duration, not fed to the clock
    clock.advance_to(start - delay)  # VIOLATION: rewinds virtual time
    clock.advance_to(start + delay)  # ok: forward offset
    heapq.heappush(heap, (start - 1.0, 0, None))  # VIOLATION: heap key rewinds
    heapq.heappush(heap, (start + 1.0, 1, None))  # ok
    clock.sleep(-clock.now())  # VIOLATION: negated reading
    clock.sleep(start - clock.now())  # repro-lint: disable=RL011
    return elapsed
