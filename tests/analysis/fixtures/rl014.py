"""RL014 fixture: float32 narrowing and raw-int coercion in grad paths."""
import numpy as np

from repro import nn
from repro.autograd import Tensor


class Narrowed(nn.Module):
    def __init__(self, in_features, num_classes, rng):
        super().__init__()
        self.lin = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x):
        squeezed = np.asarray(x.data, dtype=np.float32)  # VIOLATION RL014
        # Re-wrapping widens the storage but the precision is gone; the
        # narrowed value then feeds the grad-requiring Linear matmul.
        return self.lin(Tensor(squeezed))

class IntScaled(nn.Module):
    def __init__(self, in_features, num_classes, rng):
        super().__init__()
        self.lin = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x):
        counts = np.arange(1)
        return self.lin(x) * counts  # VIOLATION RL014 (raw int64 into tracked op)


class NarrowedSuppressed(nn.Module):
    def __init__(self, in_features, num_classes, rng):
        super().__init__()
        self.lin = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x):
        squeezed = np.asarray(x.data, dtype=np.float32)  # repro-lint: disable=RL014
        return self.lin(Tensor(squeezed))
