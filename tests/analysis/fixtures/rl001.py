"""Fixture: RL001 must fire on unseeded global RNG use, and only there."""
import numpy as np
from numpy.random import rand  # VIOLATION rl001 (legacy sampler import), line 3


def bad():
    return np.random.rand(3)  # VIOLATION rl001, line 7


def ok(rng: np.random.Generator):
    seeded = np.random.default_rng(0)
    return rng.standard_normal(3) + seeded.standard_normal(3)


def suppressed():
    return np.random.rand(3)  # repro-lint: disable=RL001
