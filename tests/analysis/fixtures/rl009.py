"""RL009 fixture: opposite `with` nesting of two locks = deadlock risk.

A cycle is reported once, at the site of its first recorded edge (the
inner ``with`` of the lexically first function on the cycle).
"""

import threading


class Pair:
    def __init__(self):
        self.alock = threading.Lock()
        self.block = threading.Lock()

    def forward(self):
        with self.alock:
            with self.block:  # VIOLATION: backward() nests the other way
                return 1

    def backward(self):
        with self.block:
            with self.alock:
                return 2


class SuppressedPair:
    def __init__(self):
        self.xlock = threading.Lock()
        self.ylock = threading.Lock()

    def one(self):
        with self.xlock:
            with self.ylock:  # repro-lint: disable=RL009
                return 1

    def two(self):
        with self.ylock:
            with self.xlock:
                return 2
