"""RL013 fixture: a forward whose matmul inner dims provably mismatch."""
from repro import nn
from repro.autograd import matmul


class BadShapes(nn.Module):
    def __init__(self, in_features, num_classes, rng):
        super().__init__()
        self.lin = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x):
        # weight is (in_features, num_classes); transposing flips the
        # contraction dim, so x @ weight.T cannot contract.
        return matmul(x, self.lin.weight.T)  # VIOLATION RL013


class BadShapesSuppressed(nn.Module):
    def __init__(self, in_features, num_classes, rng):
        super().__init__()
        self.lin = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x):
        return matmul(x, self.lin.weight.T)  # repro-lint: disable=RL013
