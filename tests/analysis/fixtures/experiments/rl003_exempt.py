"""Fixture: files under an experiments/ path segment are RL003-exempt."""
import time


def driver_stopwatch():
    return time.time()  # no violation: experiments/ is exempt
