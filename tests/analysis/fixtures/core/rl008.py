"""RL008 fixture: Algorithm-1 phase order over kind-tagged transfers."""

KIND_WEIGHTS = "weights"
KIND_MEANS = "means"
KIND_MOMENTS = "moments"


def legal_round(comm, means, moments, state):
    comm.broadcast(state, kind=KIND_WEIGHTS)
    comm.gather(means, kind=KIND_MEANS)
    comm.send_to_client(0, means, kind=KIND_MEANS)
    comm.gather(moments, kind=KIND_MOMENTS)
    comm.send_to_client(0, moments, kind=KIND_MOMENTS)
    comm.send_to_server(0, state, kind=KIND_WEIGHTS)
    comm.end_round()


def swapped_round(comm, means, moments):
    comm.gather(moments, kind=KIND_MOMENTS)
    comm.gather(means, kind=KIND_MEANS)  # VIOLATION: moments before means


def suppressed_round(comm, means, moments):
    comm.gather(moments, kind=KIND_MOMENTS)
    comm.gather(means, kind=KIND_MEANS)  # repro-lint: disable=RL008
