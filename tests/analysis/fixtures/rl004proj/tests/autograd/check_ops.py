"""Fixture gradcheck suite: covers good_op only (never collected by pytest)."""


def check_good_op():
    assert good_op is not None  # noqa: F821
