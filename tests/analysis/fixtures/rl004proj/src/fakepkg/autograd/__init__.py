"""Fixture package init: registers good_op only."""

__all__ = ["good_op"]
