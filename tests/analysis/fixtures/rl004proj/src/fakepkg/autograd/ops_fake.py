"""Fixture: RL004 — a tiny fake autograd package (never imported)."""


def good_op(a):
    def backward(grad):
        pass

    return Tensor._make(a, (a,), backward, "good_op")  # noqa: F821


def bad_op(a):  # VIOLATION rl004 ×2 (unregistered + no gradcheck), line 11
    def backward(grad):
        pass

    return Tensor._make(a, (a,), backward, "bad_op")  # noqa: F821


def suppressed_op(a):  # repro-lint: disable=RL004
    def backward(grad):
        pass

    return Tensor._make(a, (a,), backward, "suppressed_op")  # noqa: F821


def _private_helper(a):
    # Private: RL004 only audits the public op surface.
    return Tensor._make(a, (a,), None, "helper")  # noqa: F821


def not_an_op(a):
    # No Tensor._make call — not differentiable, not audited.
    return a
