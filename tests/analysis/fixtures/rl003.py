"""Fixture: RL003 must fire on wall-clock reads outside experiments/."""
import time
from datetime import datetime


def bad_stopwatch():
    return time.time()  # VIOLATION rl003, line 7


def bad_timestamp():
    return datetime.now()  # VIOLATION rl003, line 11


def ok_monotonic():
    start = time.perf_counter()
    time.sleep(0)
    return time.perf_counter() - start


def suppressed():
    return time.time()  # repro-lint: disable=RL003
