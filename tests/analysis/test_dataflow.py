"""Unit tests for the interprocedural dataflow engine itself.

The rule-level behavior (fixture projects, pinned lines, suppressions)
lives in ``test_rules.py``; this module pins the engine semantics the
rules rest on: the Algorithm-1 phase lattice, and how taint moves
through sanitizers, containers, subscripts, and instance attributes.
"""

import pytest

from repro.analysis import Linter
from repro.analysis.dataflow import (
    PHASE_NAMES,
    PROTOCOL_PHASES,
    ROUND_BOUNDARY,
    transition_allowed,
)


def _rl007(src: str, path: str = "federated/mod.py"):
    return Linter(rules=["RL007"]).lint_source(src, path=path)


class TestPhaseTable:
    def test_six_phases_named(self):
        assert sorted(PROTOCOL_PHASES.values()) == list(range(6))
        assert set(PHASE_NAMES) >= set(range(6))

    def test_forward_transitions_allowed(self):
        for p in range(6):
            for q in range(p, 6):
                assert transition_allowed(p, q)

    def test_backward_transitions_rejected_except_broadcast(self):
        for p in range(1, 6):
            for q in range(1, p):
                assert not transition_allowed(p, q)
            assert transition_allowed(p, 0)  # round delimiter

    def test_round_boundary_is_wildcard(self):
        for p in range(6):
            assert transition_allowed(p, ROUND_BOUNDARY)
            assert transition_allowed(ROUND_BOUNDARY, p)


class TestTaintSemantics:
    def test_sanitizer_call_stops_taint(self):
        src = (
            "def f(comm, graph):\n"
            "    return comm.send_to_server(0, graph.x.mean(axis=0))\n"
        )
        assert _rl007(src).ok

    def test_raw_source_reaches_sink(self):
        src = "def f(comm, graph):\n    return comm.send_to_server(0, graph.x)\n"
        assert not _rl007(src).ok

    def test_container_mutation_carries_taint(self):
        src = (
            "def f(comm, graph):\n"
            "    out = []\n"
            "    out.append(graph.x)\n"
            "    return comm.send_to_server(0, out)\n"
        )
        assert not _rl007(src).ok

    def test_metadata_attributes_are_clean(self):
        src = (
            "def f(comm, graph):\n"
            "    return comm.send_to_server(0, graph.x.shape)\n"
        )
        assert _rl007(src).ok

    def test_subscript_of_tainted_base_stays_tainted(self):
        src = "def f(comm, graph):\n    return comm.send_to_server(0, graph.x[0])\n"
        assert not _rl007(src).ok

    def test_tainted_index_does_not_taint_element(self):
        src = (
            "def f(comm, graph, table):\n"
            "    return comm.send_to_server(0, table[graph.y[0]])\n"
        )
        assert _rl007(src).ok

    def test_gather_payload_is_the_sink(self):
        src = "def f(comm, graph):\n    return comm.gather([graph.x])\n"
        assert not _rl007(src).ok

    def test_taint_flows_through_instance_attribute(self):
        src = (
            "class T:\n"
            "    def stash(self, graph):\n"
            "        self.raw = graph.x\n"
            "    def upload(self, comm):\n"
            "        return comm.send_to_server(0, self.raw)\n"
        )
        assert not _rl007(src).ok

    def test_trace_names_source_and_sink(self):
        src = "def f(comm, graph):\n    return comm.send_to_server(0, graph.adj)\n"
        report = _rl007(src)
        (v,) = report.violations
        assert "graph.adj" in v.message and "send_to_server" in v.message


class TestIndexer:
    def test_sibling_nested_functions_index_cleanly(self):
        # The nested-def dedup used to walk a FunctionInfo instead of its
        # AST node and crashed on the second sibling closure (the shape
        # of the fused spmm's per-branch backward closures).
        src = (
            "def outer(flag):\n"
            "    if flag:\n"
            "        def backward(g):\n"
            "            return g\n"
            "    else:\n"
            "        def backward(g):\n"
            "            return -g\n"
            "    return backward\n"
        )
        assert _rl007(src).ok

    def test_doubly_nested_functions_index_cleanly(self):
        src = (
            "def outer():\n"
            "    def mid():\n"
            "        def inner():\n"
            "            return 1\n"
            "        return inner\n"
            "    def other():\n"
            "        return 2\n"
            "    return mid, other\n"
        )
        assert _rl007(src).ok
