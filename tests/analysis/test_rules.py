"""Per-rule tests: each rule fires exactly on its fixture's marked lines,
its suppression works, and the CLI exits non-zero on every fixture."""

from pathlib import Path

import pytest

from repro.analysis import Linter
from repro.analysis.__main__ import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"
RL004_PROJ = FIXTURES / "rl004proj"
RL004_OPS = RL004_PROJ / "src" / "fakepkg" / "autograd" / "ops_fake.py"


def lint_fixture(rule: str, path: Path, root: Path = FIXTURES):
    return Linter(rules=[rule], root=root).lint_files([path])


def fired_lines(report, rule):
    return sorted(v.line for v in report.violations if v.rule == rule)


# Expected firing lines are pinned by the VIOLATION markers inside each
# fixture; a rule drifting wide (extra lines) or narrow (missing lines)
# fails here either way.
CASES = [
    ("RL001", FIXTURES / "rl001.py", [3, 7], 1),
    ("RL002", FIXTURES / "rl002.py", [8, 12, 16], 1),
    ("RL003", FIXTURES / "rl003.py", [7, 11], 1),
    ("RL005", FIXTURES / "rl005.py", [12, 15], 1),
    ("RL006", FIXTURES / "federated" / "rl006.py", [5], 1),
    ("RL008", FIXTURES / "core" / "rl008.py", [20], 1),
    ("RL009", FIXTURES / "rl009.py", [17], 1),
    ("RL010", FIXTURES / "federated" / "rl010.py", [16], 1),
    ("RL011", FIXTURES / "rl011.py", [8, 10, 12], 1),
    ("RL012", FIXTURES / "federated" / "rl012.py", [19], 1),
    ("RL013", FIXTURES / "rl013.py", [14], 1),
    ("RL014", FIXTURES / "rl014.py", [14, 26], 1),
    ("RL015", FIXTURES / "rl015.py", [14, 24], 1),
]


@pytest.mark.parametrize("rule,path,lines,n_suppressed", CASES, ids=[c[0] for c in CASES])
def test_rule_fires_exactly_on_marked_lines(rule, path, lines, n_suppressed):
    report = lint_fixture(rule, path)
    assert fired_lines(report, rule) == lines
    assert report.suppressed == n_suppressed


@pytest.mark.parametrize("rule,path,lines,n_suppressed", CASES, ids=[c[0] for c in CASES])
def test_cli_exits_nonzero_on_fixture(rule, path, lines, n_suppressed, capsys):
    assert cli_main([str(path), "--rule", rule]) == 1
    capsys.readouterr()


class TestRL001:
    def test_default_rng_and_generator_allowed(self):
        src = (
            "import numpy as np\n"
            "from numpy.random import default_rng, SeedSequence\n"
            "r = np.random.default_rng(np.random.SeedSequence(0))\n"
        )
        assert Linter(rules=["RL001"]).lint_source(src).ok


class TestRL002:
    def test_plain_dict_get_not_flagged(self):
        src = "def f(cache, k):\n    return cache.get(k)\n"
        assert Linter(rules=["RL002"]).lint_source(src).ok

    def test_id_in_dict_literal_flagged(self):
        src = "def f(x):\n    return {id(x): 1}\n"
        assert not Linter(rules=["RL002"]).lint_source(src).ok


class TestRL003:
    def test_experiments_path_exempt(self):
        report = lint_fixture("RL003", FIXTURES / "experiments" / "rl003_exempt.py")
        assert report.ok

    def test_bare_time_import_flagged(self):
        src = "from time import time\nt = time()\n"
        assert not Linter(rules=["RL003"]).lint_source(src).ok

    def test_perf_counter_and_sleep_allowed(self):
        src = "import time\na = time.perf_counter()\ntime.sleep(0)\n"
        assert Linter(rules=["RL003"]).lint_source(src).ok


class TestRL004:
    def _report(self):
        return lint_fixture("RL004", RL004_OPS, root=RL004_PROJ)

    def test_unregistered_unchecked_op_fires_twice(self):
        report = self._report()
        # bad_op (line 11): once for registration, once for gradcheck.
        assert fired_lines(report, "RL004") == [11, 11]
        messages = sorted(v.message for v in report.violations)
        assert "neither exported" in messages[1]
        assert "no gradcheck coverage" in messages[0]

    def test_good_op_and_private_helper_clean(self):
        report = self._report()
        assert all("good_op" not in v.message for v in report.violations)
        assert all("_private_helper" not in v.message for v in report.violations)

    def test_suppression_on_def_line(self):
        # suppressed_op would fire twice; both land on its (suppressed) def line.
        assert self._report().suppressed == 2

    def test_applies_only_to_autograd_ops_files(self):
        from repro.analysis.rules import AutogradOpCoverage

        rule = AutogradOpCoverage()
        assert rule.applies_to(Path("src/repro/autograd/ops_basic.py"))
        assert not rule.applies_to(Path("src/repro/autograd/tensor.py"))
        assert not rule.applies_to(Path("src/repro/federated/ops_fake.py"))

    def test_real_tree_ops_all_covered(self):
        root = Path(__file__).resolve().parents[2]
        report = Linter(rules=["RL004"], root=root).lint_paths([str(root / "src")])
        assert report.ok, [v.message for v in report.violations]


class TestRL005:
    def test_class_without_lock_not_audited(self):
        report = lint_fixture("RL005", FIXTURES / "rl005.py")
        assert all(v.line < 29 for v in report.violations)  # Unlocked class clean

    def test_guarded_by_annotation_accepted(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1  # guarded-by(self._lock, held by caller)\n"
        )
        assert Linter(rules=["RL005"]).lint_source(src).ok

    def test_thread_local_state_exempt(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._local = threading.local()\n"
            "    def push(self):\n"
            "        self._local.stack = []\n"
        )
        assert Linter(rules=["RL005"]).lint_source(src).ok

    def test_mutation_in_finally_still_checked(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        try:\n"
            "            pass\n"
            "        finally:\n"
            "            self.n += 1\n"
        )
        assert not Linter(rules=["RL005"]).lint_source(src).ok


class TestRL006:
    def test_scope_limited_to_aggregation_dirs(self):
        # Identical code outside federated/core/baselines/extensions is fine.
        src = "def f(xs):\n    return sum(xs) / len(xs)\n"
        linter = Linter(rules=["RL006"])
        assert linter.lint_source(src, path="gnn/agg.py").ok
        assert not linter.lint_source(src, path="federated/agg.py").ok
        from repro.analysis.rules import BareLenDivisor

        rule = BareLenDivisor()
        assert rule.applies_to(Path("src/repro/federated/server.py"))
        assert not rule.applies_to(Path("src/repro/gnn/gcn.py"))

    def test_named_denominator_accepted(self):
        src = "def f(xs):\n    n = len(xs)\n    return sum(xs) / n\n"
        linter = Linter(rules=["RL006"])
        report = linter.lint_source(src, path="federated/agg.py")
        assert report.ok


RL007_PROJ = FIXTURES / "rl007proj"


class TestRL007:
    """Interprocedural privacy-escape taint over the fixture project."""

    def _report(self):
        return Linter(rules=["RL007"], root=RL007_PROJ).lint_paths([str(RL007_PROJ)])

    def test_leaks_fire_clean_paths_do_not(self):
        report = self._report()
        # upload_raw (direct) and upload_helper_leak (through
        # core/features.raw_rows); the two mean-statistic uploads, the
        # allowlisted upload, and the suppressed one stay quiet.
        assert fired_lines(report, "RL007") == [19, 24]
        assert report.suppressed == 1

    def test_cross_file_trace_in_message(self):
        report = self._report()
        helper = [v for v in report.violations if v.line == 24]
        assert len(helper) == 1
        # The report shows the full source→sink path across files.
        assert "core/features.py" in helper[0].message
        assert "send_to_server" in helper[0].message

    def test_privacy_ok_annotation_allowlists(self):
        report = self._report()
        assert all("graph.y" not in v.message for v in report.violations)

    def test_cli_exits_nonzero(self, capsys):
        assert (
            cli_main([str(RL007_PROJ), "--root", str(RL007_PROJ), "--rule", "RL007"])
            == 1
        )
        capsys.readouterr()

    def test_out_of_scope_sink_not_reported(self):
        # The same leak in a module outside federated/core/baselines/
        # extensions is analysis input but not a reporting target.
        src = "def f(comm, graph):\n    return comm.send_to_server(0, graph.x)\n"
        linter = Linter(rules=["RL007"])
        assert linter.lint_source(src, path="gnn/leak.py").ok
        assert not linter.lint_source(src, path="federated/leak.py").ok


class TestRL008:
    def test_statistic_kinds_required_for_phases(self):
        # Untagged traffic carries no phase: no ordering constraints.
        src = (
            "def f(comm, a, b):\n"
            "    comm.gather(a)\n"
            "    comm.gather(b)\n"
        )
        assert Linter(rules=["RL008"]).lint_source(src, path="core/x.py").ok

    def test_weight_broadcast_legal_after_any_phase(self):
        # Phase 0 delimits rounds (it may follow a survivor-less round).
        src = (
            "def f(comm, m, state):\n"
            "    comm.gather(m, kind='moments')\n"
            "    comm.broadcast(state, kind='weights')\n"
        )
        assert Linter(rules=["RL008"]).lint_source(src, path="core/x.py").ok

    def test_end_round_resets_the_phase(self):
        src = (
            "def f(comm, m, w):\n"
            "    comm.gather(m, kind='moments')\n"
            "    comm.end_round()\n"
            "    comm.gather(w, kind='means')\n"
        )
        assert Linter(rules=["RL008"]).lint_source(src, path="core/x.py").ok


class TestRL009:
    def test_consistent_nesting_clean(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.alock = threading.Lock()\n"
            "        self.block = threading.Lock()\n"
            "    def f(self):\n"
            "        with self.alock:\n"
            "            with self.block:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self.alock:\n"
            "            with self.block:\n"
            "                pass\n"
        )
        assert Linter(rules=["RL009"]).lint_source(src).ok

    def test_cycle_through_callee_detected(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.alock = threading.Lock()\n"
            "        self.block = threading.Lock()\n"
            "    def helper(self):\n"
            "        with self.block:\n"
            "            pass\n"
            "    def f(self):\n"
            "        with self.alock:\n"
            "            self.helper()\n"
            "    def g(self):\n"
            "        with self.block:\n"
            "            with self.alock:\n"
            "                pass\n"
        )
        assert not Linter(rules=["RL009"]).lint_source(src).ok


def test_shipped_tree_is_clean():
    """`python -m repro.analysis src/` exits 0 on the repo (acceptance)."""
    root = Path(__file__).resolve().parents[2]
    report = Linter(root=root).lint_paths([str(root / "src")])
    assert report.ok, [f"{v.path}:{v.line} {v.rule} {v.message}" for v in report.violations]
    # The three known-legitimate id() uses in the backward topo sort are
    # suppressed, and visibly so.
    assert report.suppressed >= 3
