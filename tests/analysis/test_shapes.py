"""Tensor-IR verifier tests.

Three layers of evidence that the static interpreter is faithful:

* Dim algebra unit tests (the symbolic substrate).
* Shape parity: every registered model spec, interpreted on concrete
  dims, derives exactly the output shapes a *real* forward produces on a
  tiny DC-SBM graph — on every available kernel backend.
* Cost-oracle equality: an instrumented two-client smoke run's
  CostCollector counters equal the symbolic predictions key-for-key
  (op, dir, phase, client, layer, backend) and value-for-value.
"""

import importlib

import numpy as np
import pytest

from repro.analysis import costs, shapes
from repro.analysis.shapes import Dim, as_dim, dim_eq, dim_le, dim_lt
from repro.autograd import Tensor
from repro.autograd.backends import use_backend
from repro.graphs.data import Graph
from repro.graphs.sbm import dc_sbm
from repro.obs import cost
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _have_numba() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


BACKENDS = [
    "numpy",
    pytest.param(
        "numba", marks=pytest.mark.skipif(not _have_numba(), reason="numba not installed")
    ),
]


# ----------------------------------------------------------------------
# Dim algebra
# ----------------------------------------------------------------------
class TestDimAlgebra:
    def test_arithmetic_and_simplification(self):
        n = Dim.sym("n")
        assert (n + n) == 2 * n
        assert (n + 2) * (n + 2) == n * n + 4 * n + 4
        assert (3 * n - n) == 2 * n
        assert (n - n) == Dim.const(0)

    def test_evaluate(self):
        n, d = Dim.sym("n"), Dim.sym("d_in")
        expr = 2 * n * d + n + 4
        assert expr.evaluate({"n": 16, "d_in": 12}) == 2 * 16 * 12 + 16 + 4

    def test_const_round_trip(self):
        assert int(Dim.const(3)) == 3
        assert as_dim(7).evaluate({}) == 7
        with pytest.raises(TypeError):
            int(Dim.sym("n"))

    def test_tri_state_comparisons(self):
        n, d = Dim.sym("n"), Dim.sym("d_in")
        assert dim_le(n, n + 1) is True
        assert dim_lt(n + 1, n) is False
        assert dim_eq(2 * n, n + n) is True
        assert dim_eq(n, d) is None  # genuinely undecidable symbolically
        assert dim_le(Dim.const(1), n) is True  # symbols are >= 1

    def test_repr_is_sorted_and_stable(self):
        n, d = Dim.sym("n"), Dim.sym("d_in")
        assert repr(2 * n * d + 4) == "2*d_in*n + 4"


# ----------------------------------------------------------------------
# shape parity against real forwards
# ----------------------------------------------------------------------
#: Concrete stand-ins for every symbol the specs use (kept small so the
#: real forwards are cheap; distinct values so transposed dims cannot
#: alias).
CONCRETE = {"n": 16, "d_in": 12, "d_hidden": 8, "d_out": 6, "c": 2}


@pytest.fixture(scope="module")
def tiny_graph():
    rng = np.random.default_rng(7)
    adj, y = dc_sbm(np.array([8, 8]), 0.6, 0.15, rng)
    x = rng.standard_normal((CONCRETE["n"], CONCRETE["d_in"]))
    return Graph(x=x, adj=adj, y=y, num_classes=CONCRETE["c"])


def graph_bindings(g: Graph) -> dict:
    return {
        "n": g.num_nodes,
        "d_in": g.num_features,
        "d_hidden": CONCRETE["d_hidden"],
        "d_out": CONCRETE["d_out"],
        "c": g.num_classes,
        "nnz": int(g.s_op.nnz),
        "nnz_mean": int(g.mean_op.nnz),
        "nnz_adj": int(g.adj.nnz),
        "edges": int(g.edge_index[0].shape[0]),
    }


def _resolve_class(qualname: str):
    module, _, name = qualname.rpartition(".")
    return getattr(importlib.import_module(module), name)


def real_model(spec: shapes.ModelSpec, bindings: dict):
    cls = _resolve_class(spec.qualname)
    kwargs = {}
    for key, value in spec.init:
        if value == "rng":
            kwargs[key] = np.random.default_rng(1)
        elif isinstance(value, str) and value.startswith("sym:"):
            kwargs[key] = bindings[value[4:]]
        else:
            kwargs[key] = value
    return cls(**kwargs)


def real_forward_args(builder: str, g: Graph, bindings: dict):
    rng = np.random.default_rng(2)
    x = Tensor(g.x)
    h = Tensor(rng.standard_normal((bindings["n"], bindings["d_hidden"])))
    if builder == "graph":
        return (g,)
    if builder == "x":
        return (x,)
    if builder == "sparse_x":
        return (g.s_op, x)
    if builder == "sparse_h":
        return (g.s_op, h)
    if builder == "mean_x":
        return (g.mean_op, x)
    if builder == "edges_x":
        return (g.edge_index, x)
    if builder == "slist_x":
        return ([g.s_norm, g.s_norm], x)
    raise AssertionError(f"unknown builder {builder!r}")


def _flatten_real(value):
    if isinstance(value, Tensor):
        return [value]
    if isinstance(value, (tuple, list)):
        out = []
        for v in value:
            out.extend(_flatten_real(v))
        return out
    return []


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(shapes.SPECS), ids=sorted(shapes.SPECS))
def test_derived_shapes_match_real_forward(name, backend, tiny_graph):
    spec = shapes.SPECS[name]
    bindings = graph_bindings(tiny_graph)

    report = shapes.interpret_spec(
        spec,
        dims={k: Dim.const(v) for k, v in bindings.items()},
        backend=backend,
        backward=False,
    )
    assert report.error is None, report.error
    assert report.unknown_ops == []
    derived = [
        tuple(as_dim(d).evaluate({}) for d in shape) for shape in report.outputs
    ]

    model = real_model(spec, bindings)
    args = real_forward_args(spec.builder, tiny_graph, bindings)
    with use_backend(backend):
        out = model(*args)
    real = [t.shape for t in _flatten_real(out)]

    assert derived == real


@pytest.mark.parametrize("name", sorted(shapes.SPECS), ids=sorted(shapes.SPECS))
def test_symbolic_interpretation_is_closed(name):
    """Fully symbolic runs: no shape error, no unknown-op escapes, and a
    non-empty cost table for every model in the registry."""
    report = shapes.interpret_spec(name)
    assert report.error is None, report.error
    assert report.unknown_ops == []
    assert report.outputs
    assert report.records


# ----------------------------------------------------------------------
# cost oracle vs instrumented run
# ----------------------------------------------------------------------
def client_graphs():
    """Two differently-sized client subgraphs (distinct dims per client)."""
    out = []
    for cid, sizes in enumerate(([6, 6], [8, 8])):
        rng = np.random.default_rng(10 + cid)
        adj, y = dc_sbm(np.array(sizes), 0.7, 0.2, rng)
        n = int(sum(sizes))
        x = rng.standard_normal((n, CONCRETE["d_in"]))
        out.append(Graph(x=x, adj=adj, y=y, num_classes=CONCRETE["c"]))
    return out


@pytest.mark.parametrize("name", ["gcn", "orthogcn", "gat"])
def test_cost_oracle_equals_instrumented_run(name):
    graphs = client_graphs()
    registry = MetricsRegistry()
    tracer = Tracer()
    with cost.collecting(registry, tracer):
        for cid, g in enumerate(graphs):
            model = real_model(shapes.SPECS[name], graph_bindings(g))
            with tracer.span("round", phase="local_train", client=str(cid)):
                out = model(g)
                out.backward(np.ones_like(out.data))

    predicted = {}
    for cid, g in enumerate(graphs):
        bindings = graph_bindings(g)
        report = shapes.interpret_spec(
            name, backward=True, decide_bindings=bindings
        )
        assert report.error is None, report.error
        predicted.update(
            costs.evaluate_aggregate(
                costs.aggregate(report.records, phase="local_train", client=str(cid)),
                bindings,
            )
        )

    measured = costs.measured_cost_table(registry)
    assert costs.compare(predicted, measured) == []
    # The equality is per-(op, layer) key, not just in aggregate.
    assert any(key[4] not in ("-",) for key in measured)
    assert any(key[1] == "bwd" for key in measured)


def test_compare_reports_divergence():
    key = ("matmul", "fwd", "-", "-", "L", "-")
    assert costs.compare({key: (10, 80)}, {key: (12, 80)})
    assert costs.compare({key: (10, 80)}, {}) != []
    assert costs.compare({key: (0, 0)}, {}) == []  # all-zero rows forgiven


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestShapesCLI:
    def test_clean_model_exits_zero(self, capsys):
        assert shapes.main(["orthogcn"]) == 0
        out = capsys.readouterr().out
        assert "OrthoGCN" in out
        assert "TOTAL" in out

    def test_concrete_dims(self, capsys):
        assert shapes.main(["gcn", "--dims", "n=16,d_in=12,c=2"]) == 0
        capsys.readouterr()

    def test_list_models(self, capsys):
        assert shapes.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in shapes.SPECS:
            assert name in out

    def test_unknown_model_is_usage_error(self, capsys):
        assert shapes.main(["definitely-not-a-model"]) == 2
        capsys.readouterr()
