"""Unit tests for the static happens-before model behind RL010–RL012.

Fixture-level behavior (pinned lines, suppressions, CLI) lives in
``test_rules.py``; this module pins the analysis semantics those
fixtures rest on: thread-root discovery, the three-state ownership
model, lock/guard classification, the join edge, clock-reading
arithmetic, and schedule-taint laundering.
"""

import ast
from pathlib import Path

from repro.analysis import Linter
from repro.analysis.concurrency import (
    ClockMonotonicityAnalysis,
    HappensBeforeAnalysis,
    ScheduleTaintAnalysis,
)
from repro.analysis.dataflow import ProjectIndex
from repro.analysis.lint import FileContext


def index_of(**modules: str) -> ProjectIndex:
    ctxs = [
        FileContext(Path(f"{name}.py"), f"{name}.py", src, ast.parse(src))
        for name, src in modules.items()
    ]
    return ProjectIndex(ctxs)


def _rl010(src: str):
    return Linter(rules=["RL010"]).lint_source(src, path="federated/mod.py")


def _rl011(src: str):
    return Linter(rules=["RL011"]).lint_source(src, path="federated/mod.py")


def _rl012(src: str):
    return Linter(rules=["RL012"]).lint_source(src, path="federated/mod.py")


ENGINE = """
import threading

class Pool:
    def map(self, fn, items):
        return [fn(i) for i in items]

class Engine:
    def __init__(self):
        self.pool = Pool()
        self.lock = threading.Lock()
        self.progress = 0

    def launch(self, items):
        def task(item: Item):
            item.step()
            self.progress += 1
        return self.pool.map(task, items)

    def report(self):
        return self.progress

class Item:
    def __init__(self):
        self.calls = 0

    def step(self):
        self.calls += 1
"""


class TestThreadRoots:
    def test_mapped_closure_is_a_shared_item_root(self):
        hb = HappensBeforeAnalysis(index_of(engine=ENGINE))
        contexts = hb.compute_contexts()
        root = "engine.Engine.launch.<task>"
        assert root in hb.worker_roots
        assert hb.worker_roots[root] == "engine.Engine.launch"
        assert contexts[root] == {"shared+item"}

    def test_owned_item_method_runs_in_owned_context(self):
        hb = HappensBeforeAnalysis(index_of(engine=ENGINE))
        contexts = hb.compute_contexts()
        # task's first param is the mapped item; item.step() is owned.
        assert contexts["engine.Item.step"] == {"owned"}

    def test_closure_self_call_leaves_the_ownership_bubble(self):
        src = ENGINE + (
            "\n"
            "class Caller(Engine):\n"
            "    def go(self, items):\n"
            "        def task(item):\n"
            "            self.helper()\n"
            "        return self.pool.map(task, items)\n"
            "    def helper(self):\n"
            "        return self.progress\n"
        )
        hb = HappensBeforeAnalysis(index_of(engine=src))
        contexts = hb.compute_contexts()
        # helper is reached through the closure-captured self: shared.
        assert contexts["engine.Caller.helper"] == {"shared"}

    def test_thread_target_is_a_shared_root(self):
        src = (
            "import threading\n"
            "class Monitor:\n"
            "    def run(self):\n"
            "        t = threading.Thread(target=self.poll)\n"
            "        t.start()\n"
            "    def poll(self):\n"
            "        return 1\n"
        )
        hb = HappensBeforeAnalysis(index_of(mod=src))
        contexts = hb.compute_contexts()
        assert "mod.Monitor.poll" in hb.worker_roots
        assert contexts["mod.Monitor.poll"] == {"shared"}

    def test_lambda_item_rooted_call_never_degrades_to_shared(self):
        # `lambda c: c.step()` touches only the owned item; mapping it
        # must not reclassify Item.step into shared context (the ENGINE
        # prelude already reaches it as "owned" through `task`).
        src = ENGINE + (
            "\n"
            "class Evaluator(Engine):\n"
            "    def evaluate(self, items):\n"
            "        return self.pool.map(lambda c: c.step(), items)\n"
        )
        hb = HappensBeforeAnalysis(index_of(engine=src))
        contexts = hb.compute_contexts()
        assert "shared" not in contexts.get("engine.Item.step", set())

    def test_lambda_closure_call_is_shared(self):
        src = ENGINE + (
            "\n"
            "class Evaluator(Engine):\n"
            "    def evaluate(self, items):\n"
            "        return self.pool.map(lambda c: self.tally(c), items)\n"
            "    def tally(self, c):\n"
            "        self.progress += 1\n"
        )
        hb = HappensBeforeAnalysis(index_of(engine=src))
        contexts = hb.compute_contexts()
        assert "shared" in contexts["engine.Evaluator.tally"]

    def test_monitor_hook_methods_are_shared_roots(self):
        src = (
            "class Probe:\n"
            "    def __init__(self):\n"
            "        self.events = []\n"
            "    def on_event(self, ev):\n"
            "        self.events.append(ev)\n"
            "class Comm:\n"
            "    def __init__(self):\n"
            "        self._monitor = None\n"
            "class Session:\n"
            "    def attach(self, comm):\n"
            "        probe = Probe()\n"
            "        comm._monitor = probe\n"
        )
        hb = HappensBeforeAnalysis(index_of(mod=src))
        contexts = hb.compute_contexts()
        assert contexts.get("mod.Probe.on_event") == {"shared"}

    def test_non_executor_receiver_is_not_a_spawn(self):
        src = (
            "class C:\n"
            "    def go(self, items):\n"
            "        def task(item):\n"
            "            return item\n"
            "        return self.registry.map(task, items)\n"
        )
        hb = HappensBeforeAnalysis(index_of(mod=src))
        hb.compute_contexts()
        assert hb.worker_roots == {}


class TestRacePairing:
    def test_unsynchronized_worker_write_vs_main_read_fires(self):
        report = _rl010(ENGINE)
        assert [v.line for v in report.violations] == [17]
        (v,) = report.violations
        assert "Engine.progress" in v.message and "guarded-by" in v.message

    def test_common_lock_synchronizes(self):
        src = ENGINE.replace(
            "            self.progress += 1",
            "            with self.lock:\n                self.progress += 1",
        ).replace(
            "        return self.progress",
            "        with self.lock:\n            return self.progress",
        )
        assert _rl010(src).ok

    def test_guarded_by_annotation_on_either_side_accepted(self):
        src = ENGINE.replace(
            "            self.progress += 1",
            "            # guarded-by(round-barrier)\n            self.progress += 1",
        )
        assert _rl010(src).ok

    def test_spawning_function_access_is_join_ordered(self):
        # The engine-side read lives in launch() itself — ordered by the
        # blocking map — and report() is deleted: no race pair remains.
        src = ENGINE.replace(
            "    def report(self):\n        return self.progress\n",
            "",
        ).replace(
            "        return self.pool.map(task, items)",
            "        out = self.pool.map(task, items)\n"
            "        return out, self.progress",
        )
        assert _rl010(src).ok

    def test_owned_item_fields_never_pair(self):
        # Item.calls is mutated in owned context only: task-private.
        report = _rl010(ENGINE)
        assert all("Item.calls" not in v.message for v in report.violations)

    def test_constructor_writes_exempt(self):
        hb = HappensBeforeAnalysis(index_of(engine=ENGINE))
        assert all(a.func.split(".")[-1] != "__init__" for a in hb.field_accesses())

    def test_lock_attribute_accesses_not_recorded(self):
        hb = HappensBeforeAnalysis(index_of(engine=ENGINE))
        assert all("lock" not in a.attr for a in hb.field_accesses())

    def test_real_tree_has_no_races(self):
        root = Path(__file__).resolve().parents[2]
        report = Linter(rules=["RL010"], root=root).lint_paths([str(root / "src")])
        assert report.ok, [v.message for v in report.violations]


class TestClockMonotonicity:
    def test_forward_offset_clean(self):
        src = (
            "def f(clock, delay):\n"
            "    start = clock.now()\n"
            "    clock.advance_to(start + delay)\n"
        )
        assert _rl011(src).ok

    def test_duration_between_readings_clean(self):
        # t1 - t0 is a duration; it never reaches an advancing call.
        src = (
            "def f(clock):\n"
            "    t0 = clock.now()\n"
            "    t1 = clock.now()\n"
            "    return t1 - t0\n"
        )
        assert _rl011(src).ok

    def test_subtracted_reading_into_advance_fires(self):
        src = (
            "def f(clock, delay):\n"
            "    start = clock.now()\n"
            "    clock.advance_to(start - delay)\n"
        )
        assert [v.line for v in _rl011(src).violations] == [3]

    def test_direct_now_call_subtraction_fires(self):
        src = "def f(clock):\n    clock.sleep(-clock.now())\n"
        assert not _rl011(src).ok

    def test_non_clock_receiver_ignored(self):
        src = (
            "def f(budget, clock):\n"
            "    start = clock.now()\n"
            "    budget.advance_to(start - 1.0)\n"
        )
        assert _rl011(src).ok

    def test_heappush_key_checked_through_tuple(self):
        src = (
            "import heapq\n"
            "def f(heap, clock):\n"
            "    start = clock.now()\n"
            "    heapq.heappush(heap, (start - 1.0, 0))\n"
        )
        assert not _rl011(src).ok

    def test_heappush_payload_subtraction_is_fine(self):
        # Only the timestamp key (first tuple element) is constrained.
        src = (
            "import heapq\n"
            "def f(heap, clock):\n"
            "    start = clock.now()\n"
            "    heapq.heappush(heap, (start + 1.0, start - 0.5))\n"
        )
        assert _rl011(src).ok

    def test_analysis_runs_clean_on_real_tree(self):
        root = Path(__file__).resolve().parents[2]
        report = Linter(rules=["RL011"], root=root).lint_paths([str(root / "src")])
        assert report.ok, [v.message for v in report.violations]


SCHED_PRELUDE = (
    "import heapq\n"
    "def fedavg(states, weights=None):\n"
    "    return states[0]\n"
)


class TestScheduleTaint:
    def test_heappop_accumulation_reaches_sink(self):
        src = SCHED_PRELUDE + (
            "def agg(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        out.append(heapq.heappop(heap))\n"
            "    return fedavg(out)\n"
        )
        report = _rl012(src)
        assert len(report.violations) == 1
        assert "pop-ordered" in report.violations[0].message

    def test_sorted_launders(self):
        src = SCHED_PRELUDE + (
            "def agg(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        out.append(heapq.heappop(heap))\n"
            "    return fedavg(sorted(out))\n"
        )
        assert _rl012(src).ok

    def test_staleness_weights_cleanser(self):
        src = SCHED_PRELUDE + (
            "def staleness_weights(counts, stale, decay):\n"
            "    return counts\n"
            "def agg(heap, states):\n"
            "    stale = []\n"
            "    while heap:\n"
            "        stale.append(heapq.heappop(heap))\n"
            "    lam = staleness_weights([1.0], stale, 0.5)\n"
            "    return fedavg(states, lam)\n"
        )
        assert _rl012(src).ok

    def test_taint_crosses_return_hop(self):
        src = SCHED_PRELUDE + (
            "def drain(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        out.append(heapq.heappop(heap))\n"
            "    return out\n"
            "def agg(heap):\n"
            "    return fedavg(drain(heap))\n"
        )
        assert not _rl012(src).ok

    def test_tuple_unpack_carries_pop_taint(self):
        src = SCHED_PRELUDE + (
            "def agg(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        _, _, report = heapq.heappop(heap)\n"
            "        out.append(report)\n"
            "    return fedavg(out)\n"
        )
        assert not _rl012(src).ok

    def test_self_attr_store_carries_taint(self):
        src = SCHED_PRELUDE + (
            "class Engine:\n"
            "    def drain(self, heap):\n"
            "        self.arrivals = [heapq.heappop(heap)]\n"
            "    def agg(self):\n"
            "        return fedavg(self.arrivals)\n"
        )
        assert not _rl012(src).ok

    def test_resolved_wrapper_that_launders_internally_passes(self):
        # `aggregate`-named wrapper whose body sorts: the soft sink is
        # skipped because the callee resolves and is analyzed inside.
        src = SCHED_PRELUDE + (
            "def my_aggregate(arrivals):\n"
            "    return fedavg(sorted(arrivals))\n"
            "def run(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        out.append(heapq.heappop(heap))\n"
            "    return my_aggregate(out)\n"
        )
        assert _rl012(src).ok

    def test_resolved_wrapper_that_forwards_is_caught_inside(self):
        src = SCHED_PRELUDE + (
            "def my_aggregate(arrivals):\n"
            "    return fedavg(arrivals)\n"
            "def run(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        out.append(heapq.heappop(heap))\n"
            "    return my_aggregate(out)\n"
        )
        report = _rl012(src)
        assert [v.line for v in report.violations] == [5]  # inside the wrapper

    def test_out_of_scope_path_not_reported(self):
        src = SCHED_PRELUDE + (
            "def agg(heap):\n"
            "    out = []\n"
            "    while heap:\n"
            "        out.append(heapq.heappop(heap))\n"
            "    return fedavg(out)\n"
        )
        assert Linter(rules=["RL012"]).lint_source(src, path="gnn/agg.py").ok

    def test_fixpoint_converges_on_real_tree(self):
        root = Path(__file__).resolve().parents[2]
        report = Linter(rules=["RL012"], root=root).lint_paths([str(root / "src")])
        assert report.ok, [v.message for v in report.violations]


class TestSanitizeAnnotationHonored:
    def test_protocol_monitor_guard_annotation_present(self):
        # The one benign cross-thread read the pass found is declared,
        # not silenced: the annotation documents the caller-held lock.
        src_file = (
            Path(__file__).resolve().parents[2]
            / "src" / "repro" / "analysis" / "sanitize.py"
        )
        assert "guarded-by(self._lock, held by caller)" in src_file.read_text()
