"""Engine-level tests: suppressions, reports, reporters, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE,
    Linter,
    Rule,
    RULE_REGISTRY,
    Violation,
    all_rule_ids,
)
from repro.analysis.lint import _is_suppressed, suppressions
from repro.analysis.reporters import render_json, render_text
from repro.analysis.__main__ import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"


# ----------------------------------------------------------------------
# suppression parsing
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line(self):
        idx = suppressions("x = 1  # repro-lint: disable=RL001\n")
        assert idx == {1: {"RL001"}}

    def test_multiple_rules_one_comment(self):
        idx = suppressions("x = 1  # repro-lint: disable=RL001,RL002\n")
        assert idx[1] == {"RL001", "RL002"}

    def test_all_keyword_case_insensitive(self):
        idx = suppressions("x = 1  # repro-lint: disable=All\n")
        assert idx[1] == {"ALL"}

    def test_no_comment_no_entry(self):
        assert suppressions("x = 1\ny = 2\n") == {}

    def test_suppressed_same_line(self):
        linter = Linter(rules=["RL003"])
        report = linter.lint_source("import time\nt = time.time()  # repro-lint: disable=RL003\n")
        assert report.ok and report.suppressed == 1

    def test_suppressed_comment_line_above(self):
        src = "import time\n# repro-lint: disable=RL003\nt = time.time()\n"
        report = Linter(rules=["RL003"]).lint_source(src)
        assert report.ok and report.suppressed == 1

    def test_code_line_suppression_does_not_leak_down(self):
        # The disable on line 2 silences line 2 only, not line 3.
        src = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=RL003\n"
            "b = time.time()\n"
        )
        report = Linter(rules=["RL003"]).lint_source(src)
        assert [v.line for v in report.violations] == [3]
        assert report.suppressed == 1

    def test_disable_all_silences_every_rule(self):
        src = "import time\nt = time.time()  # repro-lint: disable=all\n"
        report = Linter(rules=["RL003"]).lint_source(src)
        assert report.ok and report.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro-lint: disable=RL001\n"
        report = Linter(rules=["RL003"]).lint_source(src)
        assert not report.ok

    def test_is_suppressed_without_context_ignores_previous_line(self):
        v = Violation(path="x.py", line=5, col=0, rule="RL001", message="m")
        assert not _is_suppressed(v, None, {4: {"RL001"}})
        assert _is_suppressed(v, None, {5: {"RL001"}})


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
class TestEngine:
    def test_all_fifteen_rules_registered(self):
        assert all_rule_ids() == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
            "RL010",
            "RL011",
            "RL012",
            "RL013",
            "RL014",
            "RL015",
        ]
        for rid, cls in RULE_REGISTRY.items():
            assert cls.id == rid and cls.name and cls.rationale

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="RL999"):
            Linter(rules=["RL999"])

    def test_rules_instantiated_fresh_per_linter(self):
        # RL004 keeps per-run state; two linters must not share it.
        a, b = Linter(rules=["RL004"]), Linter(rules=["RL004"])
        assert a.rules[0] is not b.rules[0]

    def test_parse_error_reported_as_rl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = Linter(root=tmp_path).lint_files([bad])
        assert [v.rule for v in report.violations] == [PARSE_ERROR_RULE]

    def test_iter_skips_pycache_and_non_python(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("hi\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        report = Linter(root=tmp_path).lint_paths([str(tmp_path)])
        assert report.files_checked == 1 and report.ok

    def test_violation_as_dict_and_ordering(self):
        a = Violation(path="a.py", line=2, col=0, rule="RL001", message="m")
        b = Violation(path="a.py", line=10, col=0, rule="RL001", message="m")
        assert sorted([b, a]) == [a, b]
        assert a.as_dict() == {
            "rule": "RL001", "path": "a.py", "line": 2, "col": 0, "message": "m"
        }

    def test_report_by_rule_counts(self):
        report = Linter(rules=["RL003"]).lint_source(
            "import time\na = time.time()\nb = time.time()\n"
        )
        assert report.by_rule() == {"RL003": 2}

    def test_display_paths_relative_to_root(self):
        root = Path(__file__).resolve().parents[2]
        report = Linter(root=root).lint_files([FIXTURES / "rl003.py"])
        assert all(v.path.startswith("tests/analysis/fixtures") for v in report.violations)


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _report(self):
        return Linter(rules=["RL003"]).lint_source("import time\nt = time.time()\n")

    def test_text_lists_location_and_summary(self):
        text = render_text(self._report())
        assert "<string>:2:4: RL003" in text
        assert "1 violation(s)" in text

    def test_text_clean(self):
        report = Linter(rules=["RL003"]).lint_source("x = 1\n")
        assert "clean" in render_text(report)

    def test_json_round_trips(self):
        payload = json.loads(render_json(self._report()))
        assert payload["ok"] is False
        assert payload["by_rule"] == {"RL003": 1}
        assert payload["violations"][0]["rule"] == "RL003"

    def test_json_clean(self):
        payload = json.loads(render_json(Linter(rules=["RL003"]).lint_source("x = 1\n")))
        assert payload["ok"] is True and payload["violations"] == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_violation(self, capsys):
        code = cli_main([str(FIXTURES / "rl003.py"), "--rule", "RL003"])
        assert code == 1
        assert "RL003" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = cli_main([str(FIXTURES / "rl003.py"), "--rule", "RL003", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False

    def test_unknown_rule_exits_two(self, capsys):
        assert cli_main(["--rule", "RL999", "src"]) == 2

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in all_rule_ids():
            assert rid in out


class TestChangedSince:
    """The incremental (--changed-since) PR-leg mode."""

    VIOLATING = "import numpy as np\n\ndef bad():\n    return np.random.rand(3)\n"

    @staticmethod
    def _git(repo, *args):
        import subprocess

        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", *args],
            cwd=str(repo),
            check=True,
            capture_output=True,
        )

    @pytest.fixture()
    def repo(self, tmp_path):
        (tmp_path / "old.py").write_text(self.VIOLATING)
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "old.py")
        self._git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "new.py").write_text(self.VIOLATING)  # untracked
        return tmp_path

    def test_only_changed_files_reported(self, repo, capsys):
        code = cli_main(
            [str(repo), "--rule", "RL001", "--changed-since", "HEAD",
             "--root", str(repo)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "new.py" in out
        assert "old.py" not in out

    def test_full_run_still_sees_unchanged_files(self, repo, capsys):
        code = cli_main([str(repo), "--rule", "RL001", "--root", str(repo)])
        out = capsys.readouterr().out
        assert code == 1
        assert "new.py" in out and "old.py" in out

    def test_clean_when_all_findings_are_old(self, repo, capsys):
        (repo / "new.py").unlink()
        code = cli_main(
            [str(repo), "--rule", "RL001", "--changed-since", "HEAD",
             "--root", str(repo)]
        )
        assert code == 0
        capsys.readouterr()

    def test_bad_rev_is_a_usage_error(self, repo, capsys):
        code = cli_main(
            [str(repo), "--rule", "RL001", "--changed-since", "no-such-rev",
             "--root", str(repo)]
        )
        assert code == 2
        capsys.readouterr()
