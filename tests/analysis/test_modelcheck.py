"""Tests for the bounded model checker over the async round engine.

Covers the schedule algebra (Lehmer ranks, id codec, DPOR enumeration),
the equivalence verdict on the real engine, divergence detection against
the injected pop-order fold, checkpoint/resume legs, schedule replay,
and one pinned interleaving as a seeded regression.
"""

import json
import math

import pytest

from repro.analysis.modelcheck import (
    check,
    decode_schedule_id,
    digits_from_rank,
    encode_schedule_id,
    enumerate_schedules,
    main as mc_main,
    rank_from_digits,
    run_digest,
    run_schedule,
)
from repro.experiments.loadtest import make_parties


class TestLehmerCodec:
    def test_rank_digit_round_trip_exhaustive_n4(self):
        seen = set()
        for rank in range(math.factorial(4)):
            digits = digits_from_rank(rank, 4)
            assert all(0 <= d <= 3 - k for k, d in enumerate(digits))
            assert rank_from_digits(digits) == rank
            seen.add(digits)
        assert len(seen) == 24

    def test_rank_out_of_range_raises(self):
        with pytest.raises(ValueError):
            digits_from_rank(24, 4)

    def test_schedule_id_round_trip(self):
        for ranks in [(0, 0), (1, 0), (0, 23), (23, 23), (5, 17)]:
            sid = encode_schedule_id(4, 2, ranks)
            assert decode_schedule_id(sid) == (4, 2, ranks)

    def test_identity_is_id_zero(self):
        assert encode_schedule_id(4, 2, (0, 0)) == "mc4x2-0"

    @pytest.mark.parametrize("bad", ["mc4x2", "mcXx2-0", "mc4x2-!!", "mc4x2-zzzz"])
    def test_malformed_ids_raise(self, bad):
        with pytest.raises(ValueError):
            decode_schedule_id(bad)


class TestEnumeration:
    def test_identity_enumerated_first(self):
        scheds, _ = enumerate_schedules(4, 2, 10)
        assert scheds[0] == (0, 0)

    def test_single_round_perturbations_before_products(self):
        scheds, _ = enumerate_schedules(3, 2, 11)
        # identity, then 5 non-identity ranks in round 0, then round 1.
        assert scheds[1:6] == [(k, 0) for k in range(1, 6)]
        assert scheds[6:11] == [(0, k) for k in range(1, 6)]

    def test_cap_and_raw_space(self):
        scheds, total = enumerate_schedules(4, 2, 100)
        assert total == 576 and len(scheds) == 100
        assert len(set(scheds)) == 100  # no duplicates

    def test_exhaustive_covers_everything(self):
        scheds, total = enumerate_schedules(3, 1, None)
        assert total == 6 and sorted(scheds) == [(k,) for k in range(6)]


class TestEquivalence:
    def test_all_explored_schedules_bitwise_equivalent(self):
        result = check(
            clients=3, rounds=2, seed=0, max_schedules=8,
            resume_checks=1, inject_race=False,
        )
        assert result["explored"] == 8
        assert result["distinct_digests"] == 1
        assert result["divergent"] == []
        assert result["resume_failures"] == []
        assert result["resume_checked"] == 1
        assert result["dpor_kept_ratio"] == pytest.approx(8 / 36)

    def test_injected_race_diverges_with_replayable_ids(self):
        result = check(
            clients=3, rounds=1, seed=0, max_schedules=6,
            resume_checks=0, inject_race=True,
        )
        assert result["divergent"], "pop-order fold must be schedule-dependent"
        assert result["distinct_digests"] > 1
        for sid, digest in result["divergent"]:
            n, rounds, ranks = decode_schedule_id(sid)
            assert (n, rounds) == (3, 1)
            assert digest != result["baseline_digest"]

    def test_cli_exit_codes(self, capsys):
        ok = mc_main(
            ["--clients", "3", "--rounds", "1", "--max-schedules", "4",
             "--resume-checks", "0"]
        )
        assert ok == 0
        assert "bitwise-equivalent" in capsys.readouterr().out
        bad = mc_main(
            ["--clients", "3", "--rounds", "1", "--max-schedules", "4",
             "--resume-checks", "0", "--inject-race"]
        )
        out = capsys.readouterr().out
        assert bad == 2
        assert "DIVERGENT" in out and "--replay" in out

    def test_bench_out_merges_per_mode(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # bench registry side-files stay here
        bench = tmp_path / "BENCH_modelcheck.json"
        argv = ["--clients", "3", "--rounds", "1", "--max-schedules", "2",
                "--resume-checks", "0", "--bench-out", str(bench)]
        assert mc_main(argv + ["--mode", "smoke"]) == 0
        assert mc_main(argv + ["--mode", "full"]) == 0
        capsys.readouterr()
        payload = json.loads(bench.read_text())
        assert set(payload) == {"smoke", "full"}
        for entry in payload.values():
            assert entry["schedules"] == 2
            assert entry["per_schedule_s"] > 0
            assert 0 < entry["dpor_kept_ratio"] <= 1


# The concrete interleaving pinned below was produced by
# `python -m repro.analysis.modelcheck --replay mc4x2-1 --inject-race`:
# round 0 pops clients in order 2,3,1,0 (rank 1 swaps the last pair of
# the ready set), round 1 in arrival order 1,2,0,3.
PINNED_SID = "mc4x2-1"
PINNED_POPS = [
    (2, 0, 2), (3, 0, 3), (1, 0, 1), (0, 0, 0),
    (1, 1, 5), (2, 1, 6), (0, 1, 4), (3, 1, 7),
]
PINNED_RACY_DIGEST = "2edf23a26203bebde9da2ba15a21892f"


class TestSeededRegression:
    def _replay(self, inject):
        n, rounds, ranks = decode_schedule_id(PINNED_SID)
        parts = make_parties(n, 0)
        return run_schedule(parts, 0, rounds, ranks, inject_race=inject)

    def test_pinned_schedule_pop_trace(self):
        _, ctrl = self._replay(inject=False)
        assert [(c, r, s) for c, r, s, _ in ctrl.trace] == PINNED_POPS
        times = [t for _, _, _, t in ctrl.trace]
        # Virtual pop time is non-decreasing within the engine (the pop
        # advances the clock to max(report.time, now)); the raw report
        # times may be out of order — that is the point of the schedule.
        assert times[0] == pytest.approx(0.054979, abs=1e-6)

    def test_pinned_schedule_matches_identity_on_real_engine(self):
        trainer, _ = self._replay(inject=False)
        n, rounds, ranks = decode_schedule_id(PINNED_SID)
        identity, _ = run_schedule(make_parties(n, 0), 0, rounds, (0,) * rounds)
        assert run_digest(trainer) == run_digest(identity)
        assert trainer.history.metrics_equal(identity.history, tol=0.0)

    def test_pinned_schedule_divergence_is_bitwise_reproducible(self):
        trainer, _ = self._replay(inject=True)
        assert run_digest(trainer) == PINNED_RACY_DIGEST

    def test_cli_replay_prints_trace_and_digest(self, capsys):
        assert mc_main(["--replay", PINNED_SID, "--inject-race"]) == 0
        out = capsys.readouterr().out
        assert PINNED_RACY_DIGEST in out
        assert "cid=2 round=0 seq=2" in out.splitlines()[2]


class TestResumeEquivalence:
    def test_resume_legs_match_uninterrupted_run(self):
        # resume_checks=2 exercises the snapshot/resume path on the
        # first two schedules (identity + one perturbation).
        result = check(
            clients=3, rounds=2, seed=1, max_schedules=3,
            resume_checks=2, inject_race=False,
        )
        assert result["resume_checked"] == 2
        assert result["resume_failures"] == []
        assert result["divergent"] == []
