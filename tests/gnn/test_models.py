"""Tests for the model zoo: shapes, hidden outputs, trainability."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.gnn import GCN, MLP, SAGE, SGC, OrthoGCN
from repro.graphs import load_dataset
from repro.nn import Adam, accuracy, cross_entropy

MODELS = {
    "mlp": lambda g, rng: MLP(g.num_features, g.num_classes, hidden=16, rng=rng),
    "gcn": lambda g, rng: GCN(g.num_features, g.num_classes, hidden=16, rng=rng),
    "sgc": lambda g, rng: SGC(g.num_features, g.num_classes, rng=rng),
    "sage": lambda g, rng: SAGE(g.num_features, g.num_classes, hidden=16, rng=rng),
    "ortho": lambda g, rng: OrthoGCN(g.num_features, g.num_classes, hidden=16, rng=rng),
}


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=0, scale=0.15)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_logit_shape(graph, name):
    model = MODELS[name](graph, np.random.default_rng(0))
    out = model(graph)
    assert out.shape == (graph.num_nodes, graph.num_classes)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_forward_with_hidden_consistent(graph, name):
    model = MODELS[name](graph, np.random.default_rng(0)).eval()
    with no_grad():
        logits1, hidden = model.forward_with_hidden(graph)
        logits2 = model(graph)
    np.testing.assert_allclose(logits1.data, logits2.data)
    for h in hidden:
        assert h.shape[0] == graph.num_nodes


@pytest.mark.parametrize("name", sorted(MODELS))
def test_short_training_reduces_loss(graph, name):
    model = MODELS[name](graph, np.random.default_rng(1))
    opt = Adam(model.parameters(), lr=0.01)
    labels = graph.y

    def loss_value():
        model.eval()
        with no_grad():
            return cross_entropy(model(graph), labels, graph.train_mask).item()

    before = loss_value()
    model.train()
    for _ in range(15):
        opt.zero_grad()
        cross_entropy(model(graph), labels, graph.train_mask).backward()
        opt.step()
    assert loss_value() < before


def test_gcn_beats_chance_quickly(graph):
    model = GCN(graph.num_features, graph.num_classes, hidden=32, rng=np.random.default_rng(2))
    opt = Adam(model.parameters(), lr=0.01, weight_decay=1e-4)
    model.train()
    for _ in range(60):
        opt.zero_grad()
        cross_entropy(model(graph), graph.y, graph.train_mask).backward()
        opt.step()
    model.eval()
    with no_grad():
        acc = accuracy(model(graph), graph.y, graph.test_mask)
    assert acc > 1.5 / graph.num_classes


class TestOrthoGCNSpecifics:
    def test_table1_structure_default(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=16, num_hidden=2)
        # 2 hidden layers => 1 OrthoConv between the two GCNConvs.
        assert len(m.ortho_layers) == 1

    def test_depth_scaling(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=10)
        assert len(m.ortho_layers) == 9

    def test_hidden_count_matches_depth(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=4).eval()
        with no_grad():
            _, hidden = m.forward_with_hidden(graph)
        assert len(hidden) == 4

    def test_hidden_are_nonnegative(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8).eval()
        with no_grad():
            _, hidden = m.forward_with_hidden(graph)
        for h in hidden:
            assert h.data.min() >= 0.0  # post-ReLU

    def test_ortho_weights_list(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=3)
        ws = m.ortho_weights()
        assert len(ws) == 2
        assert all(w.shape == (8, 8) for w in ws)

    def test_project_orthogonal_all_layers(self, graph):
        m = OrthoGCN(
            graph.num_features, graph.num_classes, hidden=8, num_hidden=4,
            rng=np.random.default_rng(7),
        )
        rng = np.random.default_rng(8)
        for layer in m.ortho_layers:
            # Perturb off the manifold but keep the matrix well-conditioned.
            layer.weight.data += 0.1 * rng.standard_normal((8, 8))
        m.project_orthogonal(iterations=30)
        for layer in m.ortho_layers:
            assert layer.orthogonality_residual() < 1e-6

    def test_invalid_depth(self, graph):
        with pytest.raises(ValueError):
            OrthoGCN(4, 2, num_hidden=0)

    def test_parameters_include_all_layers(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=3)
        names = {n for n, _ in m.named_parameters()}
        assert "conv_in.weight" in names
        assert "ortho0.weight" in names and "ortho1.weight" in names
        assert "conv_out.weight" in names

    def test_seeded_models_identical(self, graph):
        a = OrthoGCN(graph.num_features, graph.num_classes, rng=np.random.default_rng(5))
        b = OrthoGCN(graph.num_features, graph.num_classes, rng=np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestSGCSpecifics:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SGC(4, 2, k=0)

    def test_linear_in_features(self, graph):
        # SGC logits are linear in X: f(2X) == 2 f(X) when bias is zero.
        m = SGC(graph.num_features, graph.num_classes, rng=np.random.default_rng(0))
        m.fc.bias.data[...] = 0.0
        g2 = graph.copy()
        g2.x = 2.0 * g2.x
        with no_grad():
            np.testing.assert_allclose(m(g2).data, 2 * m(graph).data, atol=1e-9)
