"""Tests for the model zoo: shapes, hidden outputs, trainability."""

import gc

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, no_grad, relu
from repro.gnn import GCN, MLP, SAGE, SGC, OrthoGCN
from repro.gnn.models import GAT
from repro.graphs import load_dataset
from repro.graphs.data import Graph
from repro.graphs.laplacian import row_normalized_adjacency
from repro.nn import Adam, accuracy, cross_entropy

MODELS = {
    "mlp": lambda g, rng: MLP(g.num_features, g.num_classes, hidden=16, rng=rng),
    "gcn": lambda g, rng: GCN(g.num_features, g.num_classes, hidden=16, rng=rng),
    "sgc": lambda g, rng: SGC(g.num_features, g.num_classes, rng=rng),
    "sage": lambda g, rng: SAGE(g.num_features, g.num_classes, hidden=16, rng=rng),
    "ortho": lambda g, rng: OrthoGCN(g.num_features, g.num_classes, hidden=16, rng=rng),
}


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=0, scale=0.15)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_logit_shape(graph, name):
    model = MODELS[name](graph, np.random.default_rng(0))
    out = model(graph)
    assert out.shape == (graph.num_nodes, graph.num_classes)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_forward_with_hidden_consistent(graph, name):
    model = MODELS[name](graph, np.random.default_rng(0)).eval()
    with no_grad():
        logits1, hidden = model.forward_with_hidden(graph)
        logits2 = model(graph)
    np.testing.assert_allclose(logits1.data, logits2.data)
    for h in hidden:
        assert h.shape[0] == graph.num_nodes


@pytest.mark.parametrize("name", sorted(MODELS))
def test_short_training_reduces_loss(graph, name):
    model = MODELS[name](graph, np.random.default_rng(1))
    opt = Adam(model.parameters(), lr=0.01)
    labels = graph.y

    def loss_value():
        model.eval()
        with no_grad():
            return cross_entropy(model(graph), labels, graph.train_mask).item()

    before = loss_value()
    model.train()
    for _ in range(15):
        opt.zero_grad()
        cross_entropy(model(graph), labels, graph.train_mask).backward()
        opt.step()
    assert loss_value() < before


def test_gcn_beats_chance_quickly(graph):
    model = GCN(graph.num_features, graph.num_classes, hidden=32, rng=np.random.default_rng(2))
    opt = Adam(model.parameters(), lr=0.01, weight_decay=1e-4)
    model.train()
    for _ in range(60):
        opt.zero_grad()
        cross_entropy(model(graph), graph.y, graph.train_mask).backward()
        opt.step()
    model.eval()
    with no_grad():
        acc = accuracy(model(graph), graph.y, graph.test_mask)
    assert acc > 1.5 / graph.num_classes


class TestOrthoGCNSpecifics:
    def test_table1_structure_default(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=16, num_hidden=2)
        # 2 hidden layers => 1 OrthoConv between the two GCNConvs.
        assert len(m.ortho_layers) == 1

    def test_depth_scaling(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=10)
        assert len(m.ortho_layers) == 9

    def test_hidden_count_matches_depth(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=4).eval()
        with no_grad():
            _, hidden = m.forward_with_hidden(graph)
        assert len(hidden) == 4

    def test_hidden_are_nonnegative(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8).eval()
        with no_grad():
            _, hidden = m.forward_with_hidden(graph)
        for h in hidden:
            assert h.data.min() >= 0.0  # post-ReLU

    def test_ortho_weights_list(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=3)
        ws = m.ortho_weights()
        assert len(ws) == 2
        assert all(w.shape == (8, 8) for w in ws)

    def test_project_orthogonal_all_layers(self, graph):
        m = OrthoGCN(
            graph.num_features, graph.num_classes, hidden=8, num_hidden=4,
            rng=np.random.default_rng(7),
        )
        rng = np.random.default_rng(8)
        for layer in m.ortho_layers:
            # Perturb off the manifold but keep the matrix well-conditioned.
            layer.weight.data += 0.1 * rng.standard_normal((8, 8))
        m.project_orthogonal(iterations=30)
        for layer in m.ortho_layers:
            assert layer.orthogonality_residual() < 1e-6

    def test_invalid_depth(self, graph):
        with pytest.raises(ValueError):
            OrthoGCN(4, 2, num_hidden=0)

    def test_parameters_include_all_layers(self, graph):
        m = OrthoGCN(graph.num_features, graph.num_classes, hidden=8, num_hidden=3)
        names = {n for n, _ in m.named_parameters()}
        assert "conv_in.weight" in names
        assert "ortho0.weight" in names and "ortho1.weight" in names
        assert "conv_out.weight" in names

    def test_seeded_models_identical(self, graph):
        a = OrthoGCN(graph.num_features, graph.num_classes, rng=np.random.default_rng(5))
        b = OrthoGCN(graph.num_features, graph.num_classes, rng=np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestSGCSpecifics:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SGC(4, 2, k=0)

    def test_linear_in_features(self, graph):
        # SGC logits are linear in X: f(2X) == 2 f(X) when bias is zero.
        m = SGC(graph.num_features, graph.num_classes, rng=np.random.default_rng(0))
        m.fc.bias.data[...] = 0.0
        g2 = graph.copy()
        g2.x = 2.0 * g2.x
        with no_grad():
            np.testing.assert_allclose(m(g2).data, 2 * m(graph).data, atol=1e-9)


def _toy_graph(edges, n=6, f=4, seed=0):
    rng = np.random.default_rng(seed)
    rows = [u for u, v in edges] + [v for u, v in edges]
    cols = [v for u, v in edges] + [u for u, v in edges]
    adj = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    return Graph(
        x=rng.standard_normal((n, f)),
        adj=adj,
        y=rng.integers(0, 2, size=n),
        num_classes=2,
    )


RING_EDGES = [(i, (i + 1) % 6) for i in range(6)]
STAR_EDGES = [(0, i) for i in range(1, 6)]


class TestOperatorCacheIdentity:
    """Propagation operators are cached on the Graph, never keyed on id().

    Regression for the id(graph)-keyed model-side caches: CPython reuses
    object addresses after garbage collection, so a freshly created
    graph could silently receive a *dead* graph's aggregator/edge list.
    """

    def test_mean_adj_cached_on_graph(self):
        g = _toy_graph(RING_EDGES)
        assert g.mean_adj is g.mean_adj  # computed once
        np.testing.assert_allclose(
            g.mean_adj.toarray(), row_normalized_adjacency(g.adj).toarray()
        )

    def test_edge_index_cached_on_graph(self):
        from repro.gnn import GATConv

        g = _toy_graph(RING_EDGES)
        assert g.edge_index is g.edge_index
        src, dst = g.edge_index
        want_src, want_dst = GATConv.edge_index(g.adj)
        np.testing.assert_array_equal(src, want_src)
        np.testing.assert_array_equal(dst, want_dst)

    def test_copy_drops_operator_caches(self):
        g = _toy_graph(RING_EDGES)
        g.mean_adj, g.edge_index  # populate
        c = g.copy()
        assert c._mean_adj is None and c._edge_index is None

    def test_sequential_graphs_at_same_address_do_not_alias(self):
        # Force the id-reuse scenario: drop a ring graph, allocate star
        # graphs until one lands on the recycled address.  Whether or
        # not the collision happens (it almost always does in CPython),
        # the star graph must yield its own operator, not the ring's.
        model = SAGE(4, 2, hidden=8, rng=np.random.default_rng(0)).eval()
        ring = _toy_graph(RING_EDGES)
        with no_grad():
            model(ring)  # old code would cache under id(ring)
        ring_id = id(ring)
        del ring
        gc.collect()
        star = None
        for seed in range(64):
            candidate = _toy_graph(STAR_EDGES, seed=seed)
            if id(candidate) == ring_id:
                star = candidate
                break
            del candidate
        if star is None:  # pragma: no cover - allocator-dependent fallback
            star = _toy_graph(STAR_EDGES)
        with no_grad():
            got = model(star).data
            m = row_normalized_adjacency(star.adj)
            h = relu(model.conv1(m, Tensor(star.x)))
            want = model.conv2(m, h).data
        np.testing.assert_allclose(got, want)
        np.testing.assert_allclose(
            star.mean_adj.toarray(), row_normalized_adjacency(star.adj).toarray()
        )

    def test_gat_uses_graph_edges(self):
        model = GAT(4, 2, hidden=8, rng=np.random.default_rng(0)).eval()
        ring = _toy_graph(RING_EDGES)
        with no_grad():
            model(ring)
        del ring
        gc.collect()
        star = _toy_graph(STAR_EDGES)
        with no_grad():
            got = model(star).data
            h = relu(model.conv1(star.edge_index, Tensor(star.x)))
            want = model.conv2(star.edge_index, h).data
        np.testing.assert_allclose(got, want)
