"""Tests for GCNConv, OrthoConv (incl. Newton–Schulz) and SAGEConv."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, gradcheck
from repro.gnn import GCNConv, OrthoConv, SAGEConv, newton_schulz_orthogonalize
from repro.graphs.laplacian import normalized_adjacency, row_normalized_adjacency

RNG = np.random.default_rng(11)


def ring_s_norm(n=8):
    import networkx as nx

    adj = sp.csr_matrix(nx.to_scipy_sparse_array(nx.cycle_graph(n), format="csr").astype(float))
    return normalized_adjacency(adj), adj


class TestGCNConv:
    def test_output_shape(self):
        s, _ = ring_s_norm(8)
        conv = GCNConv(5, 3, rng=np.random.default_rng(0))
        out = conv(s, Tensor(RNG.standard_normal((8, 5))))
        assert out.shape == (8, 3)

    def test_gradcheck_both_orders(self):
        # out <= in (transform-first) and out > in (propagate-first).
        s, _ = ring_s_norm(6)
        for d_in, d_out in [(5, 3), (3, 5)]:
            conv = GCNConv(d_in, d_out, rng=np.random.default_rng(1))
            x = Tensor(RNG.standard_normal((6, d_in)), requires_grad=True)
            assert gradcheck(lambda t: (conv(s, t) ** 2).sum(), [x])

    def test_orders_agree(self):
        # S̃(ZW) == (S̃Z)W numerically.
        s, _ = ring_s_norm(7)
        z = RNG.standard_normal((7, 4))
        w = RNG.standard_normal((4, 4))
        np.testing.assert_allclose(s @ (z @ w), (s @ z) @ w, atol=1e-12)

    def test_propagation_smooths(self):
        # After convolution with identity weight, connected equal-feature
        # nodes stay equal (permutation equivariance on a ring).
        s, _ = ring_s_norm(6)
        conv = GCNConv(2, 2, bias=False, rng=np.random.default_rng(2))
        conv.weight.data[...] = np.eye(2)
        x = np.ones((6, 2))
        out = conv(s, Tensor(x)).data
        np.testing.assert_allclose(out - out[0], np.zeros_like(out), atol=1e-12)

    def test_weight_grads_flow(self):
        s, _ = ring_s_norm(5)
        conv = GCNConv(3, 2, rng=np.random.default_rng(3))
        (conv(s, Tensor(RNG.standard_normal((5, 3)))) ** 2).sum().backward()
        assert conv.weight.grad is not None and np.abs(conv.weight.grad).sum() > 0
        assert conv.bias.grad is not None

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GCNConv(0, 2)


class TestNewtonSchulz:
    def test_orthogonalizes_random(self):
        w = RNG.standard_normal((10, 10))
        q = newton_schulz_orthogonalize(w, iterations=20)
        np.testing.assert_allclose(q @ q.T, np.eye(10), atol=1e-6)

    def test_fixed_point_on_orthogonal(self):
        from repro.nn import init

        q0 = init.orthogonal(6, 6, RNG)
        q = newton_schulz_orthogonalize(q0, iterations=25)
        np.testing.assert_allclose(q, q0, atol=1e-6)

    def test_preserves_polar_factor_sign(self):
        # For SPD input the polar factor is the identity.
        a = RNG.standard_normal((5, 5))
        spd = a @ a.T + 5 * np.eye(5)
        q = newton_schulz_orthogonalize(spd, iterations=30)
        np.testing.assert_allclose(q, np.eye(5), atol=1e-5)

    def test_quadratic_convergence(self):
        w = RNG.standard_normal((8, 8))
        res = []
        for it in [2, 4, 8]:
            q = newton_schulz_orthogonalize(w, iterations=it)
            res.append(np.linalg.norm(q @ q.T - np.eye(8)))
        assert res[2] < res[1] < res[0]

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            newton_schulz_orthogonalize(np.ones((3, 4)))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            newton_schulz_orthogonalize(np.zeros((3, 3)))

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            newton_schulz_orthogonalize(np.eye(3), iterations=0)


class TestOrthoConv:
    def test_output_shape(self):
        s, _ = ring_s_norm(8)
        layer = OrthoConv(4, rng=np.random.default_rng(0))
        out = layer(s, Tensor(RNG.standard_normal((8, 4))))
        assert out.shape == (8, 4)

    def test_normalized_weight_frobenius(self):
        # ‖W̃‖_F = √d_h by construction.
        layer = OrthoConv(6, rng=np.random.default_rng(1))
        layer.weight.data[...] = RNG.standard_normal((6, 6)) * 3.0
        wt = layer.normalized_weight().data
        assert np.linalg.norm(wt) == pytest.approx(np.sqrt(6), rel=1e-10)

    def test_orthogonal_init_is_fixed_by_normalization(self):
        layer = OrthoConv(5, init="orthogonal", rng=np.random.default_rng(2))
        wt = layer.normalized_weight().data
        np.testing.assert_allclose(wt @ wt.T, np.eye(5), atol=1e-10)

    def test_gradcheck_through_normalization(self):
        s, _ = ring_s_norm(5)
        layer = OrthoConv(3, rng=np.random.default_rng(3))
        x = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        assert gradcheck(lambda t: (layer(s, t) ** 2).sum(), [x])
        # And w.r.t. the weight itself (normalization quotient rule).
        x2 = Tensor(RNG.standard_normal((5, 3)))
        layer.zero_grad()
        loss = (layer(s, x2) ** 2).sum()
        loss.backward()
        analytic = layer.weight.grad.copy()
        eps = 1e-6
        num = np.zeros_like(analytic)
        for i in range(3):
            for j in range(3):
                layer.weight.data[i, j] += eps
                up = (layer(s, x2) ** 2).sum().item()
                layer.weight.data[i, j] -= 2 * eps
                dn = (layer(s, x2) ** 2).sum().item()
                layer.weight.data[i, j] += eps
                num[i, j] = (up - dn) / (2 * eps)
        np.testing.assert_allclose(analytic, num, atol=1e-5)

    def test_norm_preservation_when_orthogonal(self):
        # With orthogonal W̃ and no propagation (identity S), row norms hold.
        s = sp.identity(6, format="csr")
        layer = OrthoConv(4, init="orthogonal", rng=np.random.default_rng(4))
        x = RNG.standard_normal((6, 4))
        out = layer(s, Tensor(x)).data
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(x, axis=1), rtol=1e-10
        )

    def test_project_orthogonal(self):
        layer = OrthoConv(5, init="xavier_uniform", rng=np.random.default_rng(5))
        before = layer.orthogonality_residual()
        layer.project_orthogonal(iterations=20)
        after = layer.orthogonality_residual()
        assert after < 1e-6 < before

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            OrthoConv(0)


class TestSAGEConv:
    def test_output_shape(self):
        _, adj = ring_s_norm(8)
        m = row_normalized_adjacency(adj)
        conv = SAGEConv(5, 3, rng=np.random.default_rng(0))
        out = conv(m, Tensor(RNG.standard_normal((8, 5))))
        assert out.shape == (8, 3)

    def test_weight_width_doubled(self):
        conv = SAGEConv(5, 3, rng=np.random.default_rng(0))
        assert conv.weight.shape == (10, 3)

    def test_gradcheck(self):
        _, adj = ring_s_norm(6)
        m = row_normalized_adjacency(adj)
        conv = SAGEConv(3, 2, rng=np.random.default_rng(1))
        x = Tensor(RNG.standard_normal((6, 3)), requires_grad=True)
        assert gradcheck(lambda t: (conv(m, t) ** 2).sum(), [x])

    def test_constant_features_fixed(self):
        # Constant features: self == neighbor mean, output constant rows.
        _, adj = ring_s_norm(6)
        m = row_normalized_adjacency(adj)
        conv = SAGEConv(2, 2, rng=np.random.default_rng(2))
        out = conv(m, Tensor(np.ones((6, 2)))).data
        np.testing.assert_allclose(out - out[0], np.zeros_like(out), atol=1e-12)
