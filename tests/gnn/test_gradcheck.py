"""Numerical gradient checks for the GNN layers' composite forwards.

The per-op backwards are gradchecked in ``tests/autograd``; these cases
check the layers' *compositions* — OrthoConv's differentiable Frobenius
normalization, GAT's gather/scatter edge softmax, and the Eq. 6
orthogonality penalty — against central differences end to end.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, gradcheck
from repro.gnn.gat_conv import GATConv
from repro.gnn.ortho import OrthoConv
from repro.nn import orthogonality_loss

RNG = np.random.default_rng(42)


def small_graph(n=6):
    """A fixed tiny graph: ring + one chord, row-normalized."""
    rows = list(range(n)) + [0]
    cols = [(i + 1) % n for i in range(n)] + [3]
    adj = sp.coo_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    adj = ((adj + adj.T) > 0).astype(np.float64)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    return sp.diags(1.0 / deg) @ adj


class TestOrthoConvGradcheck:
    def test_wrt_input(self):
        conv = OrthoConv(4, rng=np.random.default_rng(0))
        s = small_graph()
        z = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        assert gradcheck(lambda t: (conv.forward(s, t) ** 2).sum(), [z])

    def test_wrt_weight(self):
        # Gradients must flow through W̃ = √d·W/‖W‖_F (the quotient), not
        # just the matmul.
        conv = OrthoConv(4, rng=np.random.default_rng(0))
        s = small_graph()
        z = Tensor(RNG.standard_normal((6, 4)))
        assert gradcheck(lambda w: (conv.forward(s, z) ** 2).sum(), [conv.weight])

    def test_normalized_weight_scale_invariant(self):
        # The normalization makes W̃ invariant to rescaling W — its
        # gradient must therefore be orthogonal to W itself.
        conv = OrthoConv(4, rng=np.random.default_rng(0))
        before = conv.normalized_weight().data.copy()
        conv.weight.data *= 3.7
        np.testing.assert_allclose(conv.normalized_weight().data, before, rtol=1e-12)


class TestGATGradcheck:
    def make(self, grad_input=False):
        conv = GATConv(3, 4, rng=np.random.default_rng(0))
        adj = small_graph()
        edges = GATConv.edge_index(sp.coo_matrix((adj > 0).astype(np.float64)))
        z = Tensor(RNG.standard_normal((6, 3)), requires_grad=grad_input)
        return conv, edges, z

    def test_wrt_input(self):
        conv, edges, z = self.make(grad_input=True)
        assert gradcheck(lambda t: (conv.forward(edges, t) ** 2).sum(), [z])

    @pytest.mark.parametrize("param", ["weight", "att_src", "att_dst", "bias"])
    def test_wrt_parameters(self, param):
        # The edge softmax subtracts a detached segment max; since softmax
        # is shift-invariant, the analytic gradient must still match the
        # numeric one even though the max itself moves under perturbation.
        conv, edges, z = self.make()
        p = getattr(conv, param)
        assert gradcheck(lambda w: (conv.forward(edges, z) ** 2).sum(), [p])

    def test_forward_finite(self):
        conv, edges, z = self.make()
        assert np.isfinite(conv.forward(edges, z).data).all()


class TestOrthogonalityPenaltyGradcheck:
    def test_single_weight(self):
        # Away from the manifold the penalty ‖WWᵀ−I‖_F is smooth.
        w = Tensor(RNG.standard_normal((4, 4)) * 0.5 + np.eye(4), requires_grad=True)
        assert gradcheck(lambda t: orthogonality_loss([t]), [w])

    def test_multiple_weights_sum(self):
        ws = [
            Tensor(RNG.standard_normal((3, 3)) * 0.5 + np.eye(3), requires_grad=True)
            for _ in range(2)
        ]
        assert gradcheck(lambda a, b: orthogonality_loss([a, b]), ws)

    def test_zero_at_orthogonal(self):
        q, _ = np.linalg.qr(RNG.standard_normal((5, 5)))
        assert orthogonality_loss([Tensor(q)]).item() == pytest.approx(0.0, abs=1e-5)

    def test_matches_residual_diagnostic(self):
        conv = OrthoConv(4, rng=np.random.default_rng(3))
        conv.weight.data += RNG.standard_normal((4, 4)) * 0.1
        penalty = orthogonality_loss([conv.weight]).item()
        assert penalty == pytest.approx(conv.orthogonality_residual(), rel=1e-10)
