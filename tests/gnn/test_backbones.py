"""Tests for the extension backbones: APPNP, GAT (+ new autograd ops)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, gradcheck, leaky_relu, scatter_add
from repro.gnn import APPNP, GAT, GATConv
from repro.graphs import load_dataset
from repro.nn import Adam, cross_entropy

RNG = np.random.default_rng(17)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=0, scale=0.12)


class TestNewOps:
    def test_leaky_relu_values(self):
        x = Tensor([-2.0, 3.0])
        np.testing.assert_allclose(leaky_relu(x, 0.2).data, [-0.4, 3.0])

    def test_leaky_relu_grad(self):
        x = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        assert gradcheck(lambda t: (leaky_relu(t, 0.2) ** 2).sum(), [x])

    def test_scatter_add_values(self):
        src = Tensor([[1.0], [2.0], [3.0]])
        out = scatter_add(src, np.array([0, 0, 2]), 3)
        np.testing.assert_array_equal(out.data, [[3.0], [0.0], [3.0]])

    def test_scatter_add_grad(self):
        src = Tensor(RNG.standard_normal((5, 2)), requires_grad=True)
        idx = np.array([0, 1, 1, 2, 0])
        assert gradcheck(lambda t: (scatter_add(t, idx, 3) ** 2).sum(), [src])

    def test_scatter_add_validates(self):
        with pytest.raises(ValueError):
            scatter_add(Tensor(np.zeros((2, 1))), np.array([0]), 3)
        with pytest.raises(ValueError):
            scatter_add(Tensor(np.zeros((2, 1))), np.array([0, 5]), 3)

    def test_scatter_gather_roundtrip(self):
        # scatter_add after gather with unique idx is the identity.
        x = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        idx = np.array([2, 0, 3, 1])
        out = scatter_add(x[idx], idx, 4)
        np.testing.assert_allclose(out.data, x.data)


class TestGATConv:
    def test_attention_rows_sum_to_one(self, graph):
        # The α per destination forms a distribution: aggregating a
        # constant feature must return that constant.
        conv = GATConv(4, 4, rng=np.random.default_rng(0))
        conv.weight.data[...] = np.eye(4)
        conv.bias.data[...] = 0.0
        edges = GATConv.edge_index(graph.adj)
        out = conv(edges, Tensor(np.ones((graph.num_nodes, 4))))
        np.testing.assert_allclose(out.data, 1.0, atol=1e-10)

    def test_gradcheck_small(self):
        adj = sp.csr_matrix(
            np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        )
        conv = GATConv(3, 2, rng=np.random.default_rng(1))
        edges = GATConv.edge_index(adj)
        x = Tensor(RNG.standard_normal((3, 3)), requires_grad=True)
        assert gradcheck(lambda t: (conv(edges, t) ** 2).sum(), [x], atol=1e-4, rtol=1e-3)

    def test_self_loops_included(self):
        adj = sp.csr_matrix((3, 3))  # no edges at all
        src, dst = GATConv.edge_index(adj)
        assert len(src) == 3  # the three self loops

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GATConv(0, 2)


class TestBackboneModels:
    @pytest.mark.parametrize("cls", [APPNP, GAT])
    def test_logit_shape(self, graph, cls):
        m = cls(graph.num_features, graph.num_classes, hidden=16, rng=np.random.default_rng(0))
        assert m(graph).shape == (graph.num_nodes, graph.num_classes)

    @pytest.mark.parametrize("cls", [APPNP, GAT])
    def test_training_reduces_loss(self, graph, cls):
        from repro.autograd import no_grad

        m = cls(graph.num_features, graph.num_classes, hidden=16, rng=np.random.default_rng(1))
        opt = Adam(m.parameters(), lr=0.02)

        def val():
            m.eval()
            with no_grad():
                return cross_entropy(m(graph), graph.y, graph.train_mask).item()

        before = val()
        m.train()
        for _ in range(15):
            opt.zero_grad()
            cross_entropy(m(graph), graph.y, graph.train_mask).backward()
            opt.step()
        assert val() < before

    def test_appnp_teleport_one_ignores_graph(self, graph):
        # teleport=1.0 ⇒ propagation is a no-op: output equals the MLP head.
        from repro.autograd import no_grad

        m = APPNP(graph.num_features, graph.num_classes, hidden=8, k=3, teleport=1.0,
                  dropout_p=0.0, rng=np.random.default_rng(2)).eval()
        with no_grad():
            z = m(graph).data
            h = m.fc2(m.fc1(Tensor(graph.x)).relu()).data
        np.testing.assert_allclose(z, h, atol=1e-12)

    def test_appnp_validation(self):
        with pytest.raises(ValueError):
            APPNP(4, 2, k=0)
        with pytest.raises(ValueError):
            APPNP(4, 2, teleport=0.0)

    def test_appnp_deep_propagation_no_blowup(self, graph):
        from repro.autograd import no_grad

        m = APPNP(graph.num_features, graph.num_classes, hidden=8, k=50,
                  rng=np.random.default_rng(3)).eval()
        with no_grad():
            assert np.all(np.isfinite(m(graph).data))

    def test_fedavg_compatible(self, graph):
        # Backbones slot into the federated loop via build_model.
        from repro.federated import FederatedTrainer, TrainerConfig
        from repro.graphs import louvain_partition

        parts = louvain_partition(graph, 3, np.random.default_rng(0)).parts

        class FedAPPNP(FederatedTrainer):
            def build_model(self, g, rng):
                return APPNP(g.num_features, g.num_classes, hidden=16, rng=rng)

        hist = FedAPPNP(parts, TrainerConfig(max_rounds=3, patience=10, hidden=16), seed=0).run()
        assert len(hist) == 3
