"""Tests for the FedOMD trainer (Eq. 12 / Algorithm 1 end-to-end)."""

import numpy as np
import pytest

from repro.core import FedOMDConfig, FedOMDTrainer
from repro.graphs import load_dataset, louvain_partition


@pytest.fixture(scope="module")
def parts():
    g = load_dataset("cora", seed=0, scale=0.2)
    return louvain_partition(g, 3, np.random.default_rng(0)).parts


QUICK = dict(max_rounds=5, patience=20, hidden=16)


class TestConfig:
    def test_paper_defaults(self):
        cfg = FedOMDConfig()
        assert cfg.alpha == 0.0005
        assert cfg.orders == (2, 3, 4, 5)
        assert cfg.num_hidden == 2
        assert cfg.use_ortho and cfg.use_cmd

    def test_invalid_alpha_beta(self):
        with pytest.raises(ValueError):
            FedOMDConfig(alpha=-1)
        with pytest.raises(ValueError):
            FedOMDConfig(beta=-1)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FedOMDConfig(num_hidden=0)


class TestTrainer:
    def test_runs(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=0)
        hist = tr.run()
        assert len(hist) == 5
        assert all(np.isfinite(l) for l in hist.train_losses)

    def test_uses_orthogcn(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=0)
        from repro.gnn import OrthoGCN

        assert all(isinstance(c.model, OrthoGCN) for c in tr.clients)

    def test_moment_exchange_happens(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=0)
        assert tr._global_moments is None
        tr.begin_round(0)
        gm = tr._global_moments
        assert gm is not None
        assert gm.num_layers == 2  # num_hidden
        assert len(gm.moments[0]) == 4  # orders 2..5

    def test_no_exchange_when_cmd_disabled(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(use_cmd=False, **QUICK), seed=0)
        tr.begin_round(0)
        assert tr._global_moments is None

    def test_loss_decomposition(self, parts):
        # full loss >= CE-only loss when penalties are on (both are
        # non-negative additive terms).
        tr = FedOMDTrainer(parts, FedOMDConfig(beta=1.0, **QUICK), seed=0)
        tr.begin_round(0)
        c = tr.clients[0]
        c.model.eval()  # freeze dropout for comparability
        full = tr.local_loss(c).item()
        tr.omd_config.use_cmd = False
        tr.omd_config.use_ortho = False
        ce_only = tr.local_loss(c).item()
        assert full >= ce_only

    def test_cmd_loss_positive_with_noniid_parties(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(beta=1.0, **QUICK), seed=0)
        tr.begin_round(0)
        c = tr.clients[0]
        c.model.eval()
        full = tr.local_loss(c).item()
        tr.omd_config.use_cmd = False
        without_cmd = tr.local_loss(c).item()
        # Louvain parties are non-iid, so the CMD term is strictly > 0.
        assert full - without_cmd > 1e-6

    def test_hard_orthogonal_projects(self, parts):
        # The projection runs after local training, before aggregation
        # (FedAvg then mixes projected matrices, which needn't stay
        # orthogonal — so we check at the hook point, not after run()).
        cfg = FedOMDConfig(hard_orthogonal=True, **QUICK)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr.begin_round(0)
        for c in tr.clients:
            c.train_step(tr.local_loss)
        tr.after_local_training(0)
        for c in tr.clients:
            for layer in c.model.ortho_layers:
                assert layer.orthogonality_residual() < 1e-5

    def test_soft_penalty_reduces_residual(self, parts):
        # With alpha >> 0, residuals should stay smaller than with alpha=0.
        def final_residual(alpha):
            cfg = FedOMDConfig(
                alpha=alpha, use_cmd=False, max_rounds=30, patience=60, hidden=16
            )
            tr = FedOMDTrainer(parts, cfg, seed=0)
            tr.run()
            return np.mean(
                [l.orthogonality_residual() for c in tr.clients for l in c.model.ortho_layers]
            )

        assert final_residual(1.0) < final_residual(0.0) + 1e-9

    def test_reproducible(self, parts):
        a = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=2).run()
        b = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=2).run()
        assert a.test_accuracies == b.test_accuracies

    def test_depth_config(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(num_hidden=4, **QUICK), seed=0)
        assert len(tr.clients[0].model.ortho_layers) == 3
        tr.begin_round(0)
        assert tr._global_moments.num_layers == 4

    def test_statistics_bytes_report(self, parts):
        tr = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=0)
        rep = tr.statistics_bytes_last_round()
        # Headline communication claim: statistics ≪ model weights.
        assert rep["statistics_bytes_per_round_approx"] < rep["model_bytes_per_round"] / 10

    def test_statistics_bytes_formula_matches_measured(self, parts):
        # The closed-form estimate must agree with what the metered
        # channel actually moved during the exchange (float64 payloads,
        # so the agreement is exact, not approximate).
        tr = FedOMDTrainer(parts, FedOMDConfig(**QUICK), seed=0)
        tr._sample_participants()
        tr.begin_round(0)
        rep = tr.statistics_bytes_last_round()
        assert rep["statistics_bytes_per_round_measured"] == (
            rep["statistics_bytes_per_round_approx"]
        )
        assert (
            rep["statistics_uplink_bytes_measured"]
            + rep["statistics_downlink_bytes_measured"]
            == rep["statistics_bytes_per_round_measured"]
        )

    def test_empirical_range_mode(self, parts):
        cfg = FedOMDConfig(activation_range=None, **QUICK)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr.begin_round(0)
        a, b = tr._range
        assert b > a


class TestPartialParticipation:
    """Client sampling: only sampled parties exchange, train, and pay."""

    def test_end_to_end_smoke(self, parts):
        cfg = FedOMDConfig(participation_rate=0.5, **QUICK)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        hist = tr.run()
        assert len(hist) == QUICK["max_rounds"]
        assert all(np.isfinite(l) for l in hist.train_losses)

    def test_exchange_restricted_to_participants(self, parts):
        cfg = FedOMDConfig(participation_rate=0.5, **QUICK)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr._sample_participants()
        participants = tr.participating_clients()
        assert 0 < len(participants) < len(tr.clients)
        before = tr.comm.snapshot()
        tr.begin_round(0)
        delta = tr.comm.snapshot() - before
        # 2 statistic rounds × participants only: unsampled clients
        # contribute zero uplink messages (and bytes) this round.
        assert delta.uplink_messages == 2 * len(participants)
        assert delta.downlink_messages == 2 * len(participants)
        rep = tr.statistics_bytes_last_round()
        assert delta.total_bytes == rep["statistics_bytes_per_round_measured"]
        # The formula, evaluated at the participant count, agrees too.
        assert rep["statistics_bytes_per_round_approx"] == delta.total_bytes

    def test_global_moments_come_from_participants_only(self, parts):
        from repro.core.exchange import pooled_central_moments
        from repro.autograd import no_grad

        cfg = FedOMDConfig(participation_rate=0.5, **QUICK)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr._sample_participants()
        tr.begin_round(0)
        hidden = []
        for c in tr.participating_clients():
            c.model.eval()
            with no_grad():
                _, h = c.model.forward_with_hidden(c.graph)
            hidden.append([t.data for t in h])
        want = pooled_central_moments(hidden, orders=cfg.orders)
        got = tr._global_moments
        for l in range(got.num_layers):
            np.testing.assert_allclose(got.means[l], want.means[l], rtol=1e-10)

    def test_unsampled_clients_not_projected(self, parts):
        cfg = FedOMDConfig(hard_orthogonal=True, participation_rate=0.5, **QUICK)
        tr = FedOMDTrainer(parts, cfg, seed=0)
        tr._sample_participants()
        sampled = {c.cid for c in tr.participating_clients()}
        unsampled = [c for c in tr.clients if c.cid not in sampled]
        assert unsampled
        before = {c.cid: c.get_state() for c in unsampled}
        tr.begin_round(0)
        for c in tr.participating_clients():
            c.train_step(tr.local_loss)
        tr.after_local_training(0)
        for c in unsampled:
            for k, v in c.get_state().items():
                np.testing.assert_array_equal(v, before[c.cid][k])

    def test_participation_reduces_uplink(self, parts):
        def uplink(rate):
            cfg = FedOMDConfig(participation_rate=rate, **QUICK)
            tr = FedOMDTrainer(parts, cfg, seed=0)
            tr.run()
            return tr.comm.stats.uplink_bytes

        assert uplink(0.5) < uplink(1.0)
