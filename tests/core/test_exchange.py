"""Tests for the 2-round moment exchange (Algorithm 1's server protocol)."""

import numpy as np
import pytest

from repro.core.exchange import MomentExchange, pooled_central_moments
from repro.federated import Communicator

RNG = np.random.default_rng(23)


def make_hidden(num_clients=3, layers=2, dim=4, sizes=(10, 20, 30)):
    return [
        [RNG.standard_normal((sizes[i % len(sizes)], dim)) + i for _ in range(layers)]
        for i in range(num_clients)
    ]


class TestExchangeExactness:
    def test_global_means_match_pooled(self):
        hidden = make_hidden()
        counts = [h[0].shape[0] for h in hidden]
        comm = Communicator(num_clients=3)
        got = MomentExchange(comm).run(hidden, counts)
        want = pooled_central_moments(hidden)
        for g_mean, w_mean in zip(got.means, want.means):
            np.testing.assert_allclose(g_mean, w_mean, rtol=1e-12)

    def test_global_moments_match_pooled_exactly(self):
        # The decomposition E((Z-M)^j) = Σ (n_i/n)·E((Z_i-M)^j) is exact —
        # the heart of the 2-round trick (§4.4, DESIGN.md).
        hidden = make_hidden(num_clients=4, layers=3, dim=5)
        counts = [h[0].shape[0] for h in hidden]
        comm = Communicator(num_clients=4)
        got = MomentExchange(comm).run(hidden, counts)
        want = pooled_central_moments(hidden)
        for l in range(3):
            for oi in range(4):
                np.testing.assert_allclose(
                    got.moments[l][oi], want.moments[l][oi], rtol=1e-10, atol=1e-12
                )

    def test_single_client_recovers_own_moments(self):
        hidden = make_hidden(num_clients=1)
        comm = Communicator(num_clients=1)
        got = MomentExchange(comm).run(hidden, [hidden[0][0].shape[0]])
        z = hidden[0][0]
        np.testing.assert_allclose(got.means[0], z.mean(axis=0))
        np.testing.assert_allclose(got.moments[0][0], z.var(axis=0), rtol=1e-10)

    def test_weighting_matters(self):
        # A huge client should dominate the global mean.
        h_small = [np.zeros((5, 2))]
        h_big = [np.ones((500, 2))]
        comm = Communicator(num_clients=2)
        got = MomentExchange(comm).run([h_small, h_big], [5, 500])
        np.testing.assert_allclose(got.means[0], np.full(2, 500 / 505), rtol=1e-12)


class TestExchangeProtocol:
    def test_traffic_is_statistics_scale(self):
        # The exchange must move statistics (d-dim vectors), not features
        # (n×d matrices): total traffic << raw-feature upload.
        hidden = make_hidden(num_clients=3, layers=2, dim=8, sizes=(100, 100, 100))
        counts = [100, 100, 100]
        comm = Communicator(num_clients=3)
        MomentExchange(comm).run(hidden, counts)
        raw_bytes = sum(z.nbytes for h in hidden for z in h)
        assert comm.stats.total_bytes < raw_bytes / 5

    def test_uses_two_gathers_and_two_broadcasts(self):
        hidden = make_hidden(num_clients=2)
        comm = Communicator(num_clients=2)
        MomentExchange(comm).run(hidden, [10, 20])
        # 2 gathers (means, moments) ⇒ 2 uplink msgs per client.
        assert comm.stats.uplink_messages == 4
        # 2 broadcasts ⇒ 2 downlink msgs per client.
        assert comm.stats.downlink_messages == 4

    def test_validates_client_count(self):
        comm = Communicator(num_clients=2)
        with pytest.raises(ValueError):
            MomentExchange(comm).run(make_hidden(num_clients=3), [1, 2, 3])

    def test_validates_counts_length(self):
        comm = Communicator(num_clients=2)
        with pytest.raises(ValueError):
            MomentExchange(comm).run(make_hidden(num_clients=2), [1])

    def test_validates_layer_agreement(self):
        comm = Communicator(num_clients=2)
        bad = [[np.zeros((3, 2))], [np.zeros((3, 2)), np.zeros((3, 2))]]
        with pytest.raises(ValueError):
            MomentExchange(comm).run(bad, [3, 3])

    def test_rejects_no_layers(self):
        comm = Communicator(num_clients=1)
        with pytest.raises(ValueError):
            MomentExchange(comm).run([[]], [3])

    def test_rejects_order_one(self):
        comm = Communicator(num_clients=1)
        with pytest.raises(ValueError):
            MomentExchange(comm, orders=(1, 2))

    def test_subset_participation_matches_pooled_subset(self):
        # With client sampling only participants exchange statistics; the
        # result must be the pooled moments of exactly that subset.
        hidden = make_hidden(num_clients=4, layers=2, dim=3)
        counts = [h[0].shape[0] for h in hidden]
        participants = [1, 3]
        comm = Communicator(num_clients=4)
        got = MomentExchange(comm).run(
            [hidden[i] for i in participants],
            [counts[i] for i in participants],
            client_ids=participants,
        )
        want = pooled_central_moments([hidden[i] for i in participants])
        for l in range(2):
            np.testing.assert_allclose(got.means[l], want.means[l], rtol=1e-12)
            for oi in range(4):
                np.testing.assert_allclose(
                    got.moments[l][oi], want.moments[l][oi], rtol=1e-10, atol=1e-12
                )

    def test_subset_traffic_scales_with_participants(self):
        hidden = make_hidden(num_clients=4, layers=2, dim=3)
        counts = [h[0].shape[0] for h in hidden]
        comm = Communicator(num_clients=4)
        MomentExchange(comm).run(
            [hidden[1], hidden[3]], [counts[1], counts[3]], client_ids=[1, 3]
        )
        # 2 participants × 2 statistic rounds, up and down — nothing for
        # the unsampled clients 0 and 2.
        assert comm.stats.uplink_messages == 4
        assert comm.stats.downlink_messages == 4

    def test_subset_rejects_bad_ids(self):
        hidden = make_hidden(num_clients=2)
        comm = Communicator(num_clients=4)
        with pytest.raises(ValueError):
            MomentExchange(comm).run(hidden, [10, 20], client_ids=[0])  # length
        with pytest.raises(ValueError):
            MomentExchange(comm).run(hidden, [10, 20], client_ids=[1, 1])  # dup
        with pytest.raises(ValueError):
            MomentExchange(comm).run(hidden, [10, 20], client_ids=[0, 7])  # range

    def test_orders_carried_through(self):
        comm = Communicator(num_clients=1)
        got = MomentExchange(comm, orders=(2, 4)).run(make_hidden(num_clients=1), [10])
        assert got.orders == (2, 4)
        assert len(got.moments[0]) == 2
        assert got.num_layers == 2
