"""Tests for moment computation and the CMD distance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, gradcheck
from repro.core.cmd import cmd_distance, cmd_distance_arrays, layerwise_cmd
from repro.core.moments import (
    central_moments_np,
    empirical_activation_range,
    layer_means,
    layer_means_np,
    moments_tensor,
)

RNG = np.random.default_rng(19)


class TestMomentsNumpy:
    def test_layer_means(self):
        z = RNG.standard_normal((10, 4))
        (m,) = layer_means_np([z])
        np.testing.assert_allclose(m, z.mean(axis=0))

    def test_layer_means_rejects_1d(self):
        with pytest.raises(ValueError):
            layer_means_np([np.zeros(3)])

    def test_central_moment_order2_is_variance(self):
        z = RNG.standard_normal((500, 3))
        (m2,) = central_moments_np(z, z.mean(axis=0), [2])
        np.testing.assert_allclose(m2, z.var(axis=0), rtol=1e-10)

    def test_central_moment_order3_zero_for_symmetric(self):
        z = np.concatenate([RNG.standard_normal((4000, 2))] * 1)
        z = np.concatenate([z, -z])  # exactly symmetric
        (m3,) = central_moments_np(z, z.mean(axis=0), [3])
        np.testing.assert_allclose(m3, 0.0, atol=1e-12)

    def test_moments_about_other_mean(self):
        # E((Z - c)^1) = mean(Z) - c  for any constant c.
        z = RNG.standard_normal((50, 2))
        c = np.array([1.0, -1.0])
        (m1,) = central_moments_np(z, c, [1])
        np.testing.assert_allclose(m1, z.mean(axis=0) - c)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            central_moments_np(np.zeros((3, 2)), np.zeros(2), [0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            central_moments_np(np.zeros((3, 2)), np.zeros(3), [2])

    def test_empirical_range(self):
        a, b = empirical_activation_range([np.array([[0.1, 0.5]]), np.array([[-0.2, 0.9]])])
        assert (a, b) == (-0.2, 0.9)

    def test_empirical_range_degenerate(self):
        a, b = empirical_activation_range([np.ones((3, 2))])
        assert b - a == 1.0


class TestMomentsTensor:
    def test_matches_numpy(self):
        z = RNG.standard_normal((20, 3))
        t = Tensor(z)
        means = layer_means([t])[0].data
        np.testing.assert_allclose(means, z.mean(axis=0))
        moms = moments_tensor(t, t.mean(axis=0), [2, 3])
        ref = central_moments_np(z, z.mean(axis=0), [2, 3])
        for got, want in zip(moms, ref):
            np.testing.assert_allclose(got.data, want, rtol=1e-12)

    @pytest.mark.parametrize("j", [2, 3, 4, 5])
    def test_gradcheck_each_order(self, j):
        z = Tensor(RNG.standard_normal((6, 3)), requires_grad=True)

        def f(t):
            return (moments_tensor(t, t.mean(axis=0), [j])[0] ** 2).sum()

        assert gradcheck(f, [z])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            moments_tensor(Tensor(np.zeros(3)), Tensor(np.zeros(3)), [2])


class TestCMDDistance:
    def test_zero_when_matching_targets(self):
        z = RNG.standard_normal((40, 3))
        mu = z.mean(axis=0)
        targets = central_moments_np(z, mu, [2, 3, 4, 5])
        d = cmd_distance(Tensor(z), mu, targets).item()
        # l2_norm has an eps floor, so "zero" means a few sqrt(eps)·terms.
        assert d < 1e-4

    def test_positive_for_shifted(self):
        z = RNG.standard_normal((40, 3))
        mu = z.mean(axis=0) + 1.0
        targets = central_moments_np(z, z.mean(axis=0), [2, 3, 4, 5])
        assert cmd_distance(Tensor(z), mu, targets).item() > 0.5

    def test_gradcheck(self):
        z = Tensor(RNG.standard_normal((8, 3)), requires_grad=True)
        target_mean = RNG.standard_normal(3)
        targets = [RNG.standard_normal(3) for _ in range(4)]
        assert gradcheck(lambda t: cmd_distance(t, target_mean, targets), [z])

    def test_span_normalization(self):
        z = RNG.standard_normal((30, 2))
        mu = np.zeros(2)
        targets = [np.zeros(2)] * 4
        d1 = cmd_distance(Tensor(z), mu, targets, a=0, b=1).item()
        d2 = cmd_distance(Tensor(z), mu, targets, a=0, b=2).item()
        assert d2 < d1  # larger span shrinks every term

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            cmd_distance(Tensor(np.zeros((3, 2))), np.zeros(2), [np.zeros(2)] * 4, a=1, b=1)

    def test_rejects_mismatched_targets(self):
        with pytest.raises(ValueError):
            cmd_distance(Tensor(np.zeros((3, 2))), np.zeros(2), [np.zeros(2)])


class TestCMDArrays:
    def test_identical_samples_zero(self):
        z = RNG.standard_normal((50, 4))
        assert cmd_distance_arrays(z, z.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        z1 = RNG.standard_normal((50, 4))
        z2 = RNG.standard_normal((60, 4)) + 0.5
        assert cmd_distance_arrays(z1, z2) == pytest.approx(cmd_distance_arrays(z2, z1))

    def test_triangle_like_monotonicity(self):
        # Larger mean shift -> larger CMD.
        z = RNG.standard_normal((200, 3))
        d_small = cmd_distance_arrays(z, z + 0.1)
        d_big = cmd_distance_arrays(z, z + 1.0)
        assert d_big > d_small

    def test_scale_mismatch_detected(self):
        z = RNG.standard_normal((300, 2))
        assert cmd_distance_arrays(z, 3 * z) > 0.5

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cmd_distance_arrays(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_matches_tensor_path(self):
        # Two-sample CMD == differentiable CMD with the other sample's
        # statistics as targets.
        z1 = RNG.standard_normal((40, 3))
        z2 = RNG.standard_normal((50, 3)) + 0.3
        mu2 = z2.mean(axis=0)
        targets = central_moments_np(z2, mu2, [2, 3, 4, 5])
        d_tensor = cmd_distance(Tensor(z1), mu2, targets).item()
        d_np = cmd_distance_arrays(z1, z2)
        assert d_tensor == pytest.approx(d_np, rel=1e-4, abs=1e-5)


finite_floats = st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False)


def samples(rows=8, cols=3):
    return hnp.arrays(np.float64, (rows, cols), elements=finite_floats)


class TestCMDProperties:
    """Hypothesis invariants of the CMD metric (Eq. 11)."""

    @settings(max_examples=50, deadline=None)
    @given(samples())
    def test_identical_distributions_zero(self, z):
        assert cmd_distance_arrays(z, z.copy()) == pytest.approx(0.0, abs=1e-10)

    @settings(max_examples=50, deadline=None)
    @given(samples(), samples(rows=11))
    def test_non_negative(self, z1, z2):
        assert cmd_distance_arrays(z1, z2) >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(samples(), samples(rows=11))
    def test_symmetric(self, z1, z2):
        d = cmd_distance_arrays(z1, z2)
        assert cmd_distance_arrays(z2, z1) == pytest.approx(d, rel=1e-12, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(samples(), samples(rows=11), st.integers(min_value=0, max_value=2**31))
    def test_node_permutation_invariant(self, z1, z2, perm_seed):
        # CMD sees distributions, not node orderings: shuffling the rows
        # of either sample changes nothing (up to FP summation order).
        rng = np.random.default_rng(perm_seed)
        d = cmd_distance_arrays(z1, z2)
        d_perm = cmd_distance_arrays(rng.permutation(z1), rng.permutation(z2))
        assert d_perm == pytest.approx(d, rel=1e-9, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(samples(), samples(rows=11))
    def test_monotone_in_order_truncation(self, z1, z2):
        # Every order adds a non-negative term, so truncating the moment
        # sum earlier can only shrink the distance:
        # d_{(2,)} <= d_{(2,3)} <= d_{(2,3,4)} <= d_{(2,3,4,5)}.
        prefixes = [(2,), (2, 3), (2, 3, 4), (2, 3, 4, 5)]
        dists = [cmd_distance_arrays(z1, z2, orders=o) for o in prefixes]
        for shorter, longer in zip(dists, dists[1:]):
            assert shorter <= longer + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(samples())
    def test_tensor_path_agrees_with_numpy(self, z1):
        mu = z1.mean(axis=0)
        targets = central_moments_np(z1, mu, [2, 3, 4, 5])
        d = cmd_distance(Tensor(z1 + 0.1), mu, targets).item()
        d_np = cmd_distance_arrays(z1 + 0.1, z1)
        assert d == pytest.approx(d_np, rel=1e-4, abs=1e-5)


class TestMomentProperties:
    """Hypothesis invariants of central moments."""

    @settings(max_examples=50, deadline=None)
    @given(samples())
    def test_variance_non_negative(self, z):
        (m2,) = central_moments_np(z, z.mean(axis=0), [2])
        assert (m2 >= -1e-15).all()

    @settings(max_examples=50, deadline=None)
    @given(samples(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_shift_invariant_about_own_mean(self, z, c):
        # Central moments about the sample's own mean ignore translation.
        base = central_moments_np(z, z.mean(axis=0), [2, 3, 4, 5])
        shifted = central_moments_np(z + c, (z + c).mean(axis=0), [2, 3, 4, 5])
        for a, b in zip(base, shifted):
            np.testing.assert_allclose(a, b, rtol=1e-7, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(samples(), st.integers(min_value=0, max_value=2**31))
    def test_permutation_invariant(self, z, perm_seed):
        rng = np.random.default_rng(perm_seed)
        base = central_moments_np(z, z.mean(axis=0), [2, 3, 4, 5])
        zp = rng.permutation(z)
        perm = central_moments_np(zp, zp.mean(axis=0), [2, 3, 4, 5])
        for a, b in zip(base, perm):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(samples(), st.floats(min_value=0.1, max_value=3, allow_nan=False))
    def test_homogeneous_of_degree_j(self, z, c):
        # C_j(c·Z) = c^j · C_j(Z).
        base = central_moments_np(z, z.mean(axis=0), [2, 3, 4, 5])
        scaled = central_moments_np(c * z, c * z.mean(axis=0), [2, 3, 4, 5])
        for j, a, b in zip([2, 3, 4, 5], base, scaled):
            np.testing.assert_allclose(b, c**j * a, rtol=1e-7, atol=1e-9)


class TestLayerwiseCMD:
    def test_sums_layers(self):
        z = RNG.standard_normal((20, 3))
        mu = np.zeros(3)
        targets = [np.zeros(3)] * 4
        single = cmd_distance(Tensor(z), mu, targets).item()
        double = layerwise_cmd([Tensor(z), Tensor(z)], [mu, mu], [targets, targets]).item()
        assert double == pytest.approx(2 * single, rel=1e-10)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            layerwise_cmd([], [], [])

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            layerwise_cmd([Tensor(np.zeros((3, 2)))], [], [])
