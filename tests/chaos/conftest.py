"""Shared fixtures of the chaos suite: one small 5-party federation."""

import numpy as np
import pytest

from repro.graphs import load_dataset, louvain_partition


@pytest.fixture(scope="package")
def parts():
    g = load_dataset("cora", seed=0, scale=0.2)
    return louvain_partition(g, 5, np.random.default_rng(0)).parts
