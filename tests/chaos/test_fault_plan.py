"""FaultPlan unit tests: determinism, grammar, filters, payload helpers."""

import numpy as np
import pytest

from repro.federated.faults import (
    CORRUPT,
    CRASH,
    DROP,
    FAULT_KINDS,
    STRAGGLER,
    FaultPlan,
    FaultSpec,
    corrupt_payload,
    payload_is_finite,
)


class TestDeterminism:
    def test_event_is_pure(self):
        plan = FaultPlan([FaultSpec(DROP, 0.3)], seed=7)
        for r in range(5):
            for c in range(5):
                assert plan.event(r, c) == plan.event(r, c)

    def test_query_order_independent(self):
        plan = FaultPlan([FaultSpec(DROP, 0.3), FaultSpec(CRASH, 0.3)], seed=7)
        cells = [(r, c) for r in range(6) for c in range(6)]
        forward = {cell: plan.event(*cell) for cell in cells}
        backward = {cell: plan.event(*cell) for cell in reversed(cells)}
        assert forward == backward

    def test_same_seed_same_schedule(self):
        a = FaultPlan([FaultSpec(k, 0.25) for k in FAULT_KINDS], seed=3)
        b = FaultPlan([FaultSpec(k, 0.25) for k in FAULT_KINDS], seed=3)
        for r in range(8):
            assert a.events_for_round(r, 5) == b.events_for_round(r, 5)

    def test_different_seed_different_schedule(self):
        a = FaultPlan([FaultSpec(DROP, 0.5)], seed=0)
        b = FaultPlan([FaultSpec(DROP, 0.5)], seed=1)
        tables = [
            {(r, c): p.event(r, c) for r in range(10) for c in range(10)}
            for p in (a, b)
        ]
        assert tables[0] != tables[1]

    def test_cells_aligned_across_spec_lists(self):
        # Appending a lower-priority spec must not perturb the cells the
        # first spec already claims (each spec draws from the cell RNG in
        # order, firing or not).
        first = FaultSpec(DROP, 0.4)
        alone = FaultPlan([first], seed=11)
        extended = FaultPlan([first, FaultSpec(CRASH, 0.9)], seed=11)
        for r in range(10):
            for c in range(5):
                ev = alone.event(r, c)
                if ev is not None:
                    assert extended.event(r, c) == ev

    def test_first_matching_spec_wins(self):
        plan = FaultPlan([FaultSpec(STRAGGLER, 1.0), FaultSpec(CRASH, 1.0)], seed=0)
        for c in range(4):
            assert plan.event(0, c).kind == STRAGGLER

    def test_prob_extremes(self):
        never = FaultPlan([FaultSpec(DROP, 0.0)], seed=0)
        always = FaultPlan([FaultSpec(DROP, 1.0)], seed=0)
        assert never.events_for_round(0, 10) == {}
        assert set(always.events_for_round(0, 10)) == set(range(10))


class TestFilters:
    def test_round_range_inclusive(self):
        plan = FaultPlan([FaultSpec(DROP, 1.0, rounds=(2, 4))], seed=0)
        fired = [r for r in range(8) if plan.event(r, 0) is not None]
        assert fired == [2, 3, 4]

    def test_client_set(self):
        plan = FaultPlan([FaultSpec(DROP, 1.0, clients=frozenset({1, 3}))], seed=0)
        assert set(plan.events_for_round(0, 5)) == {1, 3}

    def test_filtered_spec_leaves_cell_to_later_specs(self):
        plan = FaultPlan(
            [
                FaultSpec(DROP, 1.0, clients=frozenset({0})),
                FaultSpec(CRASH, 1.0),
            ],
            seed=0,
        )
        assert plan.event(0, 0).kind == DROP
        assert plan.event(0, 1).kind == CRASH


class TestSpecGrammar:
    def test_simple_clause(self):
        plan = FaultPlan.from_spec("drop=0.2", seed=5)
        assert plan.seed == 5
        (spec,) = plan.specs
        assert (spec.kind, spec.prob) == (DROP, 0.2)

    def test_full_grammar(self):
        plan = FaultPlan.from_spec(
            "straggler=0.5:delay=0.02,corrupt=0.3:mode=zero:rounds=2-5,"
            "drop=1.0:clients=0|3:rounds=4"
        )
        s, c, d = plan.specs
        assert (s.kind, s.prob, s.delay) == (STRAGGLER, 0.5, 0.02)
        assert (c.kind, c.mode, c.rounds) == (CORRUPT, "zero", (2, 5))
        assert (d.kind, d.rounds, d.clients) == (DROP, (4, 4), frozenset({0, 3}))

    def test_describe_mentions_every_clause(self):
        plan = FaultPlan.from_spec("straggler=0.5:delay=0.02,corrupt=0.3:mode=zero", seed=9)
        text = plan.describe()
        assert "straggler=0.5" in text and "delay=0.02" in text
        assert "corrupt=0.3" in text and "mode=zero" in text
        assert "seed=9" in text

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense",
            "explode=0.5",
            "drop=1.5",
            "drop=0.5:wat=1",
            "straggler=0.5:delay=-1",
            "corrupt=0.5:mode=flip",
            "drop=0.5:rounds=5-2",
            "",
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([])


class TestPayloadHelpers:
    def payload(self):
        return {
            "w": np.ones((2, 3)),
            "idx": np.arange(4),
            "nested": [np.full(3, 2.0), {"b": np.float32(1.5)}],
        }

    def test_corrupt_nan_fills_floats_only(self):
        out = corrupt_payload(self.payload(), "nan")
        assert np.isnan(out["w"]).all()
        assert np.isnan(out["nested"][0]).all()
        np.testing.assert_array_equal(out["idx"], np.arange(4))

    def test_corrupt_zero(self):
        out = corrupt_payload(self.payload(), "zero")
        assert (out["w"] == 0).all()
        assert payload_is_finite(out)

    def test_corrupt_does_not_mutate_input(self):
        p = self.payload()
        corrupt_payload(p, "nan")
        assert np.isfinite(p["w"]).all()

    def test_corrupt_bad_mode(self):
        with pytest.raises(ValueError):
            corrupt_payload({}, "flip")

    def test_payload_is_finite(self):
        assert payload_is_finite(self.payload())
        assert payload_is_finite({"i": np.arange(3)})
        assert not payload_is_finite({"w": np.array([1.0, np.nan])})
        assert not payload_is_finite([np.zeros(2), (np.array([np.inf]),)])
        assert not payload_is_finite(float("nan"))
        assert payload_is_finite(None)


class TestFaultyCommunicatorKinds:
    """`by_kind` attribution must stay exact through drop/corrupt faults."""

    def _comm(self, specs):
        from repro.federated.faults import FaultInjector, FaultyCommunicator

        injector = FaultInjector(FaultPlan(specs, seed=0))
        comm = FaultyCommunicator(3, injector)
        injector.begin_round(0, 3)
        return comm

    def test_default_kind_is_other_constant(self):
        from repro.federated.comm import KIND_OTHER

        comm = self._comm([FaultSpec(DROP, 0.0)])
        comm.send_to_server(0, np.zeros(4))
        assert comm.stats.by_kind[KIND_OTHER]["uplink_bytes"] == 32
        assert set(comm.stats.by_kind) == {KIND_OTHER}

    def test_corrupt_preserves_kind_attribution(self):
        from repro.federated.comm import KIND_WEIGHTS

        comm = self._comm([FaultSpec(CORRUPT, 1.0, clients=frozenset({0}))])
        out = comm.send_to_server(0, {"w": np.zeros(4)}, kind=KIND_WEIGHTS)
        assert np.isnan(out["w"]).all()  # the bytes moved, but garbled
        cell = comm.stats.by_kind[KIND_WEIGHTS]
        assert cell["uplink_bytes"] == 32 and cell["uplink_messages"] == 1
        assert comm.stats.uplink_bytes == 32

    def test_corrupt_leaves_statistics_kinds_intact(self):
        from repro.federated.comm import KIND_MEANS

        comm = self._comm([FaultSpec(CORRUPT, 1.0, clients=frozenset({0}))])
        out = comm.send_to_server(0, np.ones(3), kind=KIND_MEANS)
        assert np.isfinite(out).all()  # corrupt only garbles weight uploads
        assert comm.stats.by_kind[KIND_MEANS]["uplink_bytes"] == 24

    def test_drop_meters_nothing_under_any_kind(self):
        from repro.federated.comm import KIND_MEANS
        from repro.federated.faults import ClientDropped

        comm = self._comm([FaultSpec(DROP, 1.0, clients=frozenset({1}))])
        with pytest.raises(ClientDropped):
            comm.send_to_server(1, np.zeros(8), kind=KIND_MEANS)
        assert comm.stats.uplink_bytes == 0 and not comm.stats.by_kind

    def test_kind_cells_sum_to_aggregate(self):
        from repro.federated.comm import KIND_MEANS, KIND_WEIGHTS

        comm = self._comm([FaultSpec(CORRUPT, 1.0, clients=frozenset({0}))])
        comm.send_to_server(0, np.zeros(2), kind=KIND_MEANS)
        comm.send_to_server(2, np.zeros(4), kind=KIND_WEIGHTS)
        comm.send_to_server(2, np.zeros(1))
        total = sum(c["uplink_bytes"] for c in comm.stats.by_kind.values())
        assert total == comm.stats.uplink_bytes == 56
