"""Virtual-clock determinism: arrival schedules, resume, and no real sleeps.

The async engine's whole correctness story rests on virtual time: the
arrival schedule is a pure function of the run seed, so quorum
decisions and staleness accounting are bit-reproducible — across runs,
across checkpoint/resume (including *mid-quorum*, with reports still in
flight), and regardless of machine load.  This suite pins each of those
claims, plus two regressions:

* a client whose crash report pops *after* its round already met quorum
  must be consumed cleanly in a later round (the fault plan is consulted
  for the dispatch round, not the pop round);
* the barrier engine's straggler/timeout/retry-backoff waits route
  through the injectable clock, so a chaos drill handed a
  :class:`VirtualClock` pays zero wall-clock for multi-second delays.
"""

import time

import numpy as np
import pytest

from repro.federated import (
    ClientLatencyModel,
    FederatedTrainer,
    TrainerConfig,
    VirtualClock,
)
from repro.federated.checkpoint import checkpoint_path
from repro.federated.faults import FaultPlan
from repro.obs import TelemetrySession
from tests.chaos.test_checkpoint_resume import (
    Killed,
    assert_states_bitwise_equal,
    kill_at_round,
)

ROUNDS = 6
KILL_AT = 4  # checkpoint_every=2 ⇒ snapshot exists for next_round=4

# Stragglers stay in flight for ~60 rounds of virtual time, so every
# checkpoint in a faulted run has a non-empty event queue.
CHURN = "straggler=0.3:delay=5.0,drop=0.1,corrupt=0.1:mode=nan,crash=0.1"


@pytest.fixture()
def telemetry():
    with TelemetrySession() as session:
        yield session.registry


def make_config(ckpt_dir=None, **overrides):
    base = dict(
        max_rounds=ROUNDS, patience=50, hidden=8, engine="async", quorum=0.6
    )
    if ckpt_dir is not None:
        base.update(checkpoint_every=2, checkpoint_dir=str(ckpt_dir))
    base.update(overrides)
    return TrainerConfig(**base)


def run_async(parts, faults=None, fault_seed=3, **overrides):
    plan = FaultPlan.from_spec(faults, seed=fault_seed) if faults else None
    tr = FederatedTrainer(parts, make_config(**overrides), seed=0, faults=plan)
    hist = tr.run()
    return tr, hist


class TestVirtualClock:
    def test_sleep_advances_without_blocking(self):
        clock = VirtualClock()
        t0 = time.perf_counter()
        clock.sleep(3600.0)
        assert time.perf_counter() - t0 < 1.0  # an hour in under a second
        assert clock.now() == 3600.0
        assert clock.elapsed == 3600.0

    def test_advance_to_is_monotonic(self):
        clock = VirtualClock(start=10.0)
        clock.advance_to(12.5)
        assert clock.now() == 12.5
        clock.advance_to(12.5)  # no-op, not an error
        with pytest.raises(ValueError, match="backward"):
            clock.advance_to(11.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            VirtualClock().sleep(-0.1)

    def test_latency_model_is_query_order_free(self):
        # Like FaultPlan.event: a pure function of (seed, round, client),
        # so schedules survive any interleaving or resume point.
        m1 = ClientLatencyModel(7, base=0.05, jitter=0.5)
        m2 = ClientLatencyModel(7, base=0.05, jitter=0.5)
        forward = [(r, c, m1.duration(r, c)) for r in range(4) for c in range(5)]
        backward = [
            (r, c, m2.duration(r, c))
            for r in reversed(range(4))
            for c in reversed(range(5))
        ]
        assert sorted(forward) == sorted(backward)


class TestArrivalScheduleDeterminism:
    def test_identical_runs_identical_schedules(self, parts):
        tr1, hist1 = run_async(parts, faults=CHURN)
        tr2, hist2 = run_async(parts, faults=CHURN)
        assert hist1.metrics_equal(hist2)
        assert_states_bitwise_equal(tr1, tr2)
        # The virtual timeline itself is part of the reproducible state:
        # same seed ⇒ same quorum waits ⇒ same final clock reading.
        assert tr1.clock.elapsed == tr2.clock.elapsed
        assert tr1.async_engine.version == tr2.async_engine.version

    def test_faulted_run_is_load_independent(self, parts):
        # Virtual elapsed time is orders of magnitude beyond the wall
        # time spent: 5-second stragglers cost nothing real.
        t0 = time.perf_counter()
        tr, hist = run_async(parts, faults=CHURN)
        wall = time.perf_counter() - t0
        assert len(hist) == ROUNDS
        assert tr.clock.elapsed > 1.0  # stragglers pushed virtual time out
        assert wall < 30.0


class TestMidQuorumResume:
    def test_resume_with_reports_in_flight_is_bitwise(self, parts, tmp_path):
        plan = lambda: FaultPlan.from_spec(CHURN, seed=3)  # noqa: E731
        baseline = FederatedTrainer(parts, make_config(), seed=0, faults=plan())
        base_hist = baseline.run()

        victim = FederatedTrainer(
            parts, make_config(tmp_path), seed=0, faults=plan()
        )
        kill_at_round(victim, KILL_AT)
        with pytest.raises(Killed):
            victim.run()

        resumed = FederatedTrainer(
            parts, make_config(tmp_path), seed=0, faults=plan()
        )
        resumed.resume(checkpoint_path(str(tmp_path)))
        assert resumed._start_round == KILL_AT
        # The test is only meaningful mid-quorum: stragglers must still
        # be in flight in the restored event queue.
        assert len(resumed.async_engine._heap) > 0
        hist = resumed.run()

        assert hist.metrics_equal(base_hist)
        assert_states_bitwise_equal(resumed, baseline)
        assert resumed.async_engine.version == baseline.async_engine.version
        assert resumed.clock.elapsed == pytest.approx(baseline.clock.elapsed, abs=0)
        ga, gb = resumed.async_engine.global_state, baseline.async_engine.global_state
        assert ga.keys() == gb.keys()
        for k in ga:
            np.testing.assert_array_equal(ga[k], gb[k])

    def test_clean_full_quorum_resume_matches_barrier_golden(self, parts, tmp_path):
        # No faults, quorum 1.0: the resumed async run must land on the
        # same bits as an uninterrupted *barrier* run — resume composes
        # with the engine-equivalence guarantee.
        barrier = FederatedTrainer(
            parts, make_config(engine="barrier", quorum=1.0), seed=0
        )
        base_hist = barrier.run()
        victim = FederatedTrainer(parts, make_config(tmp_path, quorum=1.0), seed=0)
        kill_at_round(victim, KILL_AT)
        with pytest.raises(Killed):
            victim.run()
        resumed = FederatedTrainer(parts, make_config(tmp_path, quorum=1.0), seed=0)
        resumed.resume(checkpoint_path(str(tmp_path)))
        assert resumed.run().metrics_equal(base_hist)
        assert_states_bitwise_equal(resumed, barrier)

    def test_engine_checkpoint_mismatch_rejected(self, parts, tmp_path):
        # A barrier trainer cannot resume an async checkpoint: the saved
        # event queue would be silently dropped.
        victim = FederatedTrainer(parts, make_config(tmp_path), seed=0)
        kill_at_round(victim, KILL_AT)
        with pytest.raises(Killed):
            victim.run()
        barrier = FederatedTrainer(
            parts, make_config(engine="barrier", quorum=1.0), seed=0
        )
        with pytest.raises(ValueError, match="engine"):
            barrier.resume(checkpoint_path(str(tmp_path)))


class TestCrashAfterQuorum:
    """Regression: a crash report popping in a later round is consumed cleanly.

    With ``quorum=0.25`` (2 of 5 uploads) and seed-0 latencies, client
    0's round-0 report is the third arrival — round 0 aggregates before
    it pops, so the crash fires from round 1's event loop while the
    injector has already moved on.  The fault plan must be consulted for
    the *dispatch* round for the crash to be recorded at all.
    """

    def test_late_crash_consumed(self, parts, telemetry):
        lat = ClientLatencyModel(0, base=0.05, jitter=0.5)
        order = sorted(range(5), key=lambda c: lat.duration(0, c))
        assert order.index(0) >= 2, "precondition: client 0 must miss quorum"

        tr, hist = run_async(
            parts, faults="crash=1.0:clients=0:rounds=0", quorum=0.25
        )
        assert len(hist) == ROUNDS
        assert telemetry.counter("faults.injected", kind="crash").value == 1
        assert telemetry.counter("faults.excluded", kind="crash").value == 1
        # Later rounds keep aggregating: the lost report stalls nothing.
        assert tr.async_engine.version == ROUNDS

    def test_late_crash_deterministic(self, parts):
        runs = [
            run_async(parts, faults="crash=1.0:clients=0:rounds=0", quorum=0.25)
            for _ in range(2)
        ]
        assert runs[0][1].metrics_equal(runs[1][1])
        assert_states_bitwise_equal(runs[0][0], runs[1][0])


class TestBarrierSleepsAreInjectable:
    """Pin of the retry/backoff fix: barrier waits go through the clock."""

    def test_straggler_timeout_backoff_pay_no_wall_clock(self, parts, telemetry):
        clock = VirtualClock()
        cfg = TrainerConfig(
            max_rounds=3,
            patience=50,
            hidden=8,
            client_timeout=0.01,
            client_retries=1,
            retry_backoff=3.0,
        )
        plan = FaultPlan.from_spec("straggler=1.0:delay=5.0", seed=0)
        tr = FederatedTrainer(parts, cfg, seed=0, faults=plan, clock=clock)
        t0 = time.perf_counter()
        hist = tr.run()
        wall = time.perf_counter() - t0
        assert len(hist) == 3
        # Every client straggles every round: each costs one timeout
        # (0.01) plus one retry backoff (3.0) in *virtual* seconds.
        expected = 3 * len(tr.clients) * (0.01 + 3.0)
        assert clock.elapsed == pytest.approx(expected)
        assert wall < 10.0  # ~45 virtual seconds of waiting, near-zero real
        recovered = telemetry.counter("faults.recovered", kind="straggler").value
        assert recovered == 3 * len(tr.clients)

    def test_virtual_and_real_clock_runs_match_bitwise(self, parts):
        # The clock changes *when* things happen, never *what* happens:
        # with millisecond delays the SystemClock run is fast enough to
        # compare directly.
        spec = "straggler=1.0:delay=0.001"
        cfg = dict(max_rounds=3, patience=50, hidden=8)
        real = FederatedTrainer(
            parts, TrainerConfig(**cfg), seed=0, faults=FaultPlan.from_spec(spec)
        )
        hist_real = real.run()
        virt = FederatedTrainer(
            parts,
            TrainerConfig(**cfg),
            seed=0,
            faults=FaultPlan.from_spec(spec),
            clock=VirtualClock(),
        )
        hist_virt = virt.run()
        assert hist_virt.metrics_equal(hist_real)
        assert_states_bitwise_equal(virt, real)
