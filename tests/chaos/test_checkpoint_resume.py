"""Checkpoint/resume: a killed-and-resumed run is bitwise-identical.

The kill is simulated by monkeypatching ``begin_round`` to raise at a
chosen round — after the previous round's checkpoint was written, before
any new work — then resuming a *freshly constructed* trainer from the
snapshot.  "Identical" means: history ``metrics_equal`` the
uninterrupted run's AND every final weight array equal to the bit.
"""

import numpy as np
import pytest

from repro.federated import FederatedTrainer, TrainerConfig
from repro.federated.checkpoint import (
    checkpoint_path,
    load_trainer_checkpoint,
    save_trainer_checkpoint,
)
from repro.federated.faults import FaultPlan

ROUNDS = 6
KILL_AT = 4  # checkpoint_every=2 ⇒ snapshot exists for next_round=4


class Killed(RuntimeError):
    pass


def make_config(ckpt_dir=None, **overrides):
    base = dict(max_rounds=ROUNDS, patience=50, hidden=8)
    if ckpt_dir is not None:
        base.update(checkpoint_every=2, checkpoint_dir=str(ckpt_dir))
    base.update(overrides)
    return TrainerConfig(**base)


def kill_at_round(trainer, round_idx):
    original = trainer.begin_round

    def dying(r):
        if r >= round_idx:
            raise Killed(f"simulated crash at round {r}")
        return original(r)

    trainer.begin_round = dying


def run_interrupted(parts, ckpt_dir, faults=None, resume_overrides=None):
    victim = FederatedTrainer(parts, make_config(ckpt_dir), seed=0, faults=faults)
    kill_at_round(victim, KILL_AT)
    with pytest.raises(Killed):
        victim.run()

    cfg = make_config(ckpt_dir, **(resume_overrides or {}))
    resumed = FederatedTrainer(parts, cfg, seed=0, faults=faults)
    resumed.resume(checkpoint_path(str(ckpt_dir)))
    assert resumed._start_round == KILL_AT
    return resumed, resumed.run()


def assert_states_bitwise_equal(a, b):
    for ca, cb in zip(a.clients, b.clients):
        sa, sb = ca.get_state(), cb.get_state()
        assert sa.keys() == sb.keys()
        for k in sa:
            np.testing.assert_array_equal(sa[k], sb[k], err_msg=f"client {ca.cid}/{k}")


class TestResumeBitwise:
    def test_clean_run(self, parts, tmp_path):
        baseline = FederatedTrainer(parts, make_config(), seed=0)
        base_hist = baseline.run()
        resumed, hist = run_interrupted(parts, tmp_path)
        assert hist.metrics_equal(base_hist)
        assert_states_bitwise_equal(resumed, baseline)

    def test_under_faults(self, parts, tmp_path):
        spec = "drop=0.2,straggler=0.3:delay=0.001,corrupt=0.2:mode=nan,crash=0.2"
        baseline = FederatedTrainer(
            parts, make_config(), seed=0, faults=FaultPlan.from_spec(spec, seed=5)
        )
        base_hist = baseline.run()
        resumed, hist = run_interrupted(
            parts, tmp_path, faults=FaultPlan.from_spec(spec, seed=5)
        )
        assert hist.metrics_equal(base_hist)
        assert_states_bitwise_equal(resumed, baseline)

    def test_parallel_resume_of_serial_run(self, parts, tmp_path):
        # num_workers is operational: a serial run's checkpoint may resume
        # parallel and must land on the same bits.
        baseline = FederatedTrainer(parts, make_config(), seed=0)
        base_hist = baseline.run()
        resumed, hist = run_interrupted(
            parts, tmp_path, resume_overrides={"num_workers": 3}
        )
        assert hist.metrics_equal(base_hist)
        assert_states_bitwise_equal(resumed, baseline)

    def test_parallel_checkpoint_resumed_serially(self, parts, tmp_path):
        baseline = FederatedTrainer(parts, make_config(num_workers=3), seed=0)
        base_hist = baseline.run()
        victim = FederatedTrainer(parts, make_config(tmp_path, num_workers=3), seed=0)
        kill_at_round(victim, KILL_AT)
        with pytest.raises(Killed):
            victim.run()
        resumed = FederatedTrainer(parts, make_config(tmp_path), seed=0)
        resumed.resume(checkpoint_path(str(tmp_path)))
        assert resumed.run().metrics_equal(base_hist)
        assert_states_bitwise_equal(resumed, baseline)

    def test_resumed_history_contains_prefix(self, parts, tmp_path):
        resumed, hist = run_interrupted(parts, tmp_path)
        assert [r.round for r in hist.records] == list(range(ROUNDS))


class TestCheckpointContents:
    def test_comm_stats_continue_not_reset(self, parts, tmp_path):
        baseline = FederatedTrainer(parts, make_config(), seed=0)
        baseline.run()
        resumed, _ = run_interrupted(parts, tmp_path)
        assert resumed.comm.stats.uplink_bytes == baseline.comm.stats.uplink_bytes
        assert resumed.comm.stats.by_kind == baseline.comm.stats.by_kind

    def test_optimizer_state_round_trips(self, parts, tmp_path):
        tr = FederatedTrainer(parts, make_config(), seed=0)
        tr.run()
        path = save_trainer_checkpoint(tr, checkpoint_path(str(tmp_path)), next_round=ROUNDS)
        fresh = FederatedTrainer(parts, make_config(), seed=0)
        load_trainer_checkpoint(fresh, path)
        steps = []
        for a, b in zip(tr.clients, fresh.clients):
            sa, sb = a.optimizer.state_dict(), b.optimizer.state_dict()
            assert sa["t"] == sb["t"]
            steps.append(sa["t"])
            for ma, mb in zip(sa["m"], sb["m"]):
                np.testing.assert_array_equal(ma, mb)
        # Parties without labeled nodes never step (t stays 0), but the
        # federation as a whole must have trained.
        assert max(steps) > 0

    def test_early_stop_state_round_trips(self, parts, tmp_path):
        tr = FederatedTrainer(parts, make_config(), seed=0)
        tr.run()
        path = save_trainer_checkpoint(tr, checkpoint_path(str(tmp_path)), next_round=ROUNDS)
        fresh = FederatedTrainer(parts, make_config(), seed=0)
        load_trainer_checkpoint(fresh, path)
        assert fresh._best_val == tr._best_val
        assert fresh._rounds_since_best == tr._rounds_since_best
        assert (fresh._best_states is None) == (tr._best_states is None)


class TestCheckpointValidation:
    def save_one(self, parts, tmp_path, **cfg):
        tr = FederatedTrainer(parts, make_config(**cfg), seed=0)
        tr.run()
        return save_trainer_checkpoint(tr, checkpoint_path(str(tmp_path)), next_round=2)

    def test_config_mismatch_raises(self, parts, tmp_path):
        path = self.save_one(parts, tmp_path)
        other = FederatedTrainer(parts, make_config(lr=0.5), seed=0)
        with pytest.raises(ValueError, match="lr"):
            load_trainer_checkpoint(other, path)

    def test_operational_fields_may_differ(self, parts, tmp_path):
        path = self.save_one(parts, tmp_path)
        other = FederatedTrainer(parts, make_config(num_workers=2), seed=0)
        load_trainer_checkpoint(other, path)  # must not raise

    def test_client_count_mismatch_raises(self, parts, tmp_path):
        path = self.save_one(parts, tmp_path)
        fewer = FederatedTrainer(parts[:3], make_config(), seed=0)
        with pytest.raises(ValueError, match="clients"):
            load_trainer_checkpoint(fewer, path)

    def test_trainer_kind_mismatch_raises(self, parts, tmp_path):
        from repro.core import FedOMDConfig, FedOMDTrainer

        path = self.save_one(parts, tmp_path)
        omd = FedOMDTrainer(
            parts, FedOMDConfig(max_rounds=ROUNDS, patience=50, hidden=8), seed=0
        )
        with pytest.raises(ValueError, match="saved by"):
            load_trainer_checkpoint(omd, path)
