"""Chaos loop invariants: every fault kind, end to end.

For each fault kind the suite asserts the ISSUE's acceptance triple:
the 5-client run *completes* (graceful degradation, no crash), the
fault is *visible* in the obs counters, and the schedule is
*deterministic* — same fault seed ⇒ identical history metrics,
serial or parallel.
"""

import numpy as np
import pytest

from repro.federated import FederatedTrainer, TrainerConfig
from repro.federated.faults import FaultPlan
from repro.obs import TelemetrySession

ROUNDS = 4
N_CLIENTS = 5


def make_config(**overrides):
    base = dict(max_rounds=ROUNDS, patience=50, hidden=8)
    base.update(overrides)
    return TrainerConfig(**base)


def run_with(parts, spec, fault_seed=0, **cfg_overrides):
    plan = FaultPlan.from_spec(spec, seed=fault_seed)
    tr = FederatedTrainer(parts, make_config(**cfg_overrides), seed=0, faults=plan)
    hist = tr.run()
    return tr, hist


def all_states_finite(tr):
    return all(np.isfinite(v).all() for c in tr.clients for v in c.get_state().values())


@pytest.fixture()
def telemetry():
    with TelemetrySession() as session:
        yield session.registry


class TestDrop:
    def test_partial_drop_completes(self, parts, telemetry):
        tr, hist = run_with(parts, "drop=1.0:clients=1")
        assert len(hist) == ROUNDS
        assert all_states_finite(tr)
        assert telemetry.counter("faults.injected", kind="drop").value == ROUNDS
        assert telemetry.counter("faults.excluded", kind="drop").value == ROUNDS

    def test_dropped_client_moves_no_bytes(self, parts):
        faulty, _ = run_with(parts, "drop=1.0:clients=1")
        clean = FederatedTrainer(parts, make_config(), seed=0)
        clean.run()
        assert faulty.comm.stats.uplink_bytes < clean.comm.stats.uplink_bytes

    def test_total_outage_leaves_model_untouched(self, parts):
        # Every client unreachable every round: no training, no FedAvg —
        # the run must still complete, with weights at their initial sync.
        tr, hist = run_with(parts, "drop=1.0")
        assert len(hist) == ROUNDS
        w0 = FederatedTrainer(parts, make_config(), seed=0).clients[0].get_state()
        for c in tr.clients:
            for k, v in c.get_state().items():
                np.testing.assert_array_equal(v, w0[k])


class TestStraggler:
    def test_pure_delay_changes_nothing_but_time(self, parts, telemetry):
        # Without a timeout a straggler just slows the round; the training
        # trajectory must be identical to the fault-free run.
        tr, hist = run_with(parts, "straggler=1.0:delay=0.001")
        clean = FederatedTrainer(parts, make_config(), seed=0)
        assert hist.metrics_equal(clean.run())
        assert (
            telemetry.counter("faults.injected", kind="straggler").value
            == ROUNDS * N_CLIENTS
        )
        assert telemetry.counter("faults.excluded", kind="straggler").value == 0

    def test_timeout_retry_recovers(self, parts, telemetry):
        # Delay beyond the deadline: attempt abandoned, retry succeeds —
        # and because the timed-out attempt never ran the client's work,
        # the trajectory still matches the fault-free run.
        tr, hist = run_with(
            parts,
            "straggler=1.0:delay=0.05:clients=2",
            client_timeout=0.005,
            client_retries=1,
        )
        clean = FederatedTrainer(parts, make_config(), seed=0)
        assert hist.metrics_equal(clean.run())
        assert telemetry.counter("faults.recovered", kind="straggler").value == ROUNDS
        assert telemetry.counter("faults.excluded", kind="straggler").value == 0

    def test_timeout_without_retry_excludes(self, parts, telemetry):
        tr, hist = run_with(
            parts,
            "straggler=1.0:delay=0.05:clients=2",
            client_timeout=0.005,
            client_retries=0,
        )
        assert len(hist) == ROUNDS
        assert telemetry.counter("faults.excluded", kind="straggler").value == ROUNDS


class TestCorrupt:
    def test_nan_uploads_quarantined(self, parts, telemetry):
        tr, hist = run_with(parts, "corrupt=1.0:mode=nan:clients=1")
        assert len(hist) == ROUNDS
        # The NaN payload crossed the (metered) wire but never reached
        # FedAvg: every surviving weight is finite.
        assert all_states_finite(tr)
        assert telemetry.counter("faults.injected", kind="corrupt").value == ROUNDS
        assert telemetry.counter("faults.quarantined").value == ROUNDS
        assert telemetry.counter("faults.excluded", kind="quarantine").value == ROUNDS

    def test_all_nan_round_keeps_previous_global(self, parts):
        tr, hist = run_with(parts, "corrupt=1.0:mode=nan")
        assert len(hist) == ROUNDS
        assert all_states_finite(tr)

    def test_zero_mode_passes_quarantine(self, parts, telemetry):
        # Zeroed payloads are finite on purpose: they model silent
        # corruption the quarantine cannot see, degrading accuracy
        # without crashing the loop.
        tr, hist = run_with(parts, "corrupt=1.0:mode=zero:clients=1")
        assert len(hist) == ROUNDS
        assert all_states_finite(tr)
        assert telemetry.counter("faults.quarantined").value == 0

    def test_quarantine_can_be_disabled(self, parts):
        tr, hist = run_with(
            parts, "corrupt=1.0:mode=nan:clients=1", quarantine_nonfinite=False
        )
        # Without the guard the poisoned upload reaches FedAvg.
        assert not all_states_finite(tr)


class TestCrash:
    def test_crash_excluded_then_resynced(self, parts, telemetry):
        tr, hist = run_with(parts, "crash=1.0:clients=3")
        assert len(hist) == ROUNDS
        assert telemetry.counter("faults.injected", kind="crash").value == ROUNDS
        assert telemetry.counter("faults.excluded", kind="crash").value == ROUNDS
        # Each round's closing broadcast re-syncs the crashed client: all
        # parties end the run on the same weights.
        ref = tr.clients[0].get_state()
        for c in tr.clients[1:]:
            for k, v in c.get_state().items():
                np.testing.assert_array_equal(v, ref[k])

    def test_crash_differs_from_clean_run(self, parts):
        _, hist = run_with(parts, "crash=1.0:clients=3")
        clean = FederatedTrainer(parts, make_config(), seed=0)
        # The crashed client's updates are genuinely lost, so the
        # trajectory differs from the fault-free one (the fault is real,
        # not cosmetic).
        assert not hist.metrics_equal(clean.run())


class TestDeterminism:
    SPEC = "drop=0.2,straggler=0.2:delay=0.001,corrupt=0.2:mode=nan,crash=0.2"

    def test_same_fault_seed_identical_histories(self, parts):
        _, a = run_with(parts, self.SPEC, fault_seed=13)
        _, b = run_with(parts, self.SPEC, fault_seed=13)
        assert a.metrics_equal(b)

    def test_serial_equals_parallel_under_faults(self, parts):
        _, serial = run_with(parts, self.SPEC, fault_seed=13)
        _, parallel = run_with(parts, self.SPEC, fault_seed=13, num_workers=3)
        assert serial.metrics_equal(parallel)

    def test_fault_seed_matters(self, parts):
        plans = [
            FaultPlan.from_spec("drop=0.5", seed=s).events_for_round(0, N_CLIENTS)
            for s in (13, 14)
        ]
        assert plans[0] != plans[1]


class TestFedOMDUnderFaults:
    def test_fedomd_chaos_run_completes(self, parts):
        from repro.core import FedOMDConfig, FedOMDTrainer

        plan = FaultPlan.from_spec(
            "drop=0.2,corrupt=0.2:mode=nan,crash=0.2", seed=3
        )
        cfg = FedOMDConfig(max_rounds=ROUNDS, patience=50, hidden=8)
        tr = FedOMDTrainer(parts, cfg, seed=0, faults=plan)
        hist = tr.run()
        assert len(hist) == ROUNDS
        assert all_states_finite(tr)

    def test_fedomd_fault_determinism(self, parts):
        from repro.core import FedOMDConfig, FedOMDTrainer

        runs = []
        for _ in range(2):
            plan = FaultPlan.from_spec("drop=0.3,crash=0.3", seed=21)
            cfg = FedOMDConfig(max_rounds=3, patience=50, hidden=8)
            runs.append(FedOMDTrainer(parts, cfg, seed=0, faults=plan).run())
        assert runs[0].metrics_equal(runs[1])
