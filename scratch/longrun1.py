import numpy as np, time
from repro.graphs import load_dataset, louvain_partition
from repro.core import FedOMDTrainer, FedOMDConfig
from repro.federated import FederatedTrainer, TrainerConfig

g = load_dataset("cora", seed=0, scale=1.0)
pr = louvain_partition(g, 3, np.random.default_rng(0))
print("train counts:", [int(p.train_mask.sum()) for p in pr.parts], flush=True)

t0=time.time()
tr2 = FederatedTrainer(pr.parts, TrainerConfig(max_rounds=600, patience=200, hidden=64), seed=0)
h2 = tr2.run()
print(f"fedgcn rounds={len(h2)} best={h2.final_test_accuracy():.4f} {time.time()-t0:.0f}s", flush=True)

t0=time.time()
cfg = FedOMDConfig(max_rounds=600, patience=200, hidden=64)
tr = FedOMDTrainer(pr.parts, cfg, seed=0)
h = tr.run()
print(f"fedomd rounds={len(h)} best={h.final_test_accuracy():.4f} {time.time()-t0:.0f}s", flush=True)
print("fedomd curve:", [f"{a:.3f}" for a in h.test_accuracies[::50]], flush=True)
print("fedgcn curve:", [f"{a:.3f}" for a in h2.test_accuracies[::50]], flush=True)
