"""Patch EXPERIMENTS.md placeholders from results/quick/*.csv."""
import os

from repro.reporting import read_csv


def md_table(csv_path, note=""):
    if not os.path.exists(csv_path):
        return None
    cols = read_csv(csv_path)
    headers = list(cols)
    n = len(cols[headers[0]])
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for i in range(n):
        lines.append("| " + " | ".join(cols[h][i] for h in headers) + " |")
    if note:
        lines += ["", note]
    return "\n".join(lines)


def concat_tables(paths, note=""):
    parts = [md_table(p) for p in paths]
    parts = [p for p in parts if p]
    if not parts:
        return None
    # Merge: keep the first table's header, append later tables' rows.
    merged = parts[0].splitlines()
    for extra in parts[1:]:
        merged.extend(extra.splitlines()[2:])
    if note:
        merged += ["", note]
    return "\n".join(merged)


MISSING = (
    "*Not completed within this session's quick run — regenerate with "
    "`python -m repro.experiments {exp} --mode quick` (smoke-scale numbers "
    "are printed by `pytest benchmarks/ --benchmark-only`).*"
)

PATCHES = {
    "<!-- TABLE4 -->": lambda: concat_tables(
        [f"results/quick/table4_{d}.csv" for d in ["cora", "citeseer", "computer", "photo"]],
        note="(quick mode, 1 seed; missing dataset blocks, if any, regenerate with "
        "`python -m repro.experiments table4 --mode quick`)",
    ),
    "<!-- TABLE5 -->": lambda: md_table("results/quick/table5_quick.csv"),
    "<!-- TABLE6 -->": lambda: md_table("results/quick/table6_quick.csv"),
    "<!-- TABLE7 -->": lambda: md_table(
        "results/quick/table7_quick.csv",
        note="(subset: M ∈ {3, 9}, depths {2, 6, 10}; full grid via "
        "`python -m repro.experiments table7 --mode quick`)",
    ),
    "<!-- FIG5 -->": lambda: md_table(
        "results/quick/fig5_quick.csv",
        note="The `Curve` column is a downsampled sparkline of each model's "
        "per-round test accuracy; regenerate the full per-round CSV with "
        "`python -m repro.experiments fig5 --mode quick` (writes "
        "`fig5_curves.csv`).",
    ),
    "<!-- FIG6 -->": lambda: md_table("results/quick/fig6_quick.csv"),
    "<!-- FIG7 -->": lambda: md_table("results/quick/fig7_quick.csv"),
}

text = open("EXPERIMENTS.md").read()
for marker, make in PATCHES.items():
    if marker not in text:
        continue
    table = make()
    if table is not None:
        text = text.replace(marker, table)
        print("filled", marker)
    else:
        exp = marker.strip("<!- >").lower()
        text = text.replace(marker, MISSING.format(exp=exp))
        print("marked missing", marker)

ext_parts = []
for name in ["ext_backbones", "ext_partitioners", "ext_serveropt", "ext_privacy"]:
    for mode in ["quick", "smoke"]:
        t = md_table(f"results/{mode}/{name}.csv")
        if t:
            ext_parts.append(f"### {name} (mode: {mode})\n\n{t}")
            break
if "<!-- EXT -->" in text:
    if ext_parts:
        text = text.replace("<!-- EXT -->", "\n\n".join(ext_parts))
        print("filled EXT")
    else:
        text = text.replace(
            "<!-- EXT -->",
            "*Regenerate with `python -m repro.experiments ext_backbones|ext_privacy|"
            "ext_partitioners|ext_serveropt --mode quick`; the ablation benchmark "
            "suite (`benchmarks/test_bench_ablation.py`) prints smoke-scale results.*",
        )
        print("marked EXT missing")

open("EXPERIMENTS.md", "w").write(text)
print("done")
