import numpy as np
from repro.graphs import load_dataset, louvain_partition
from repro.core import FedOMDTrainer, FedOMDConfig
from repro.federated import FederatedTrainer, TrainerConfig

for scale in [0.25]:
    g = load_dataset("cora", seed=0, scale=scale)
    pr = louvain_partition(g, 3, np.random.default_rng(0))
    for lr in [0.01, 0.03, 0.05]:
        o = FedOMDTrainer(pr.parts, FedOMDConfig(max_rounds=150, patience=150, hidden=64, lr=lr), seed=0).run()
        f = FederatedTrainer(pr.parts, TrainerConfig(max_rounds=150, patience=150, hidden=64, lr=lr), seed=0).run()
        print(f"scale={scale} lr={lr}: fedomd={o.final_test_accuracy():.3f} fedgcn={f.final_test_accuracy():.3f}", flush=True)
