import numpy as np
from repro.graphs import load_dataset, louvain_partition
from repro.experiments.runner import run_cell, ModeParams

params = ModeParams(scale=1.0, max_rounds=400, patience=200, seeds=2)
cache = {}
for m in [3, 5]:
    for model in ["fedgcn", "locgcn", "fedomd"]:
        mean, std, t = run_cell(model, "cora", m, params, seeds=[0, 1], partition_cache=cache)
        print(f"cora M={m} {model:8s} {mean:.4f} ±{std:.4f}  ({t:.0f}s)", flush=True)
