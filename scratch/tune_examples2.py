import numpy as np
from repro.core import FedOMDConfig, FedOMDTrainer
from repro.federated import FederatedTrainer, TrainerConfig
from repro.graphs import Graph, dc_sbm, semi_supervised_split

def make_region(region_id, rng, shared=0.25, regional=0.9, train_ratio=0.02, noise=0.3):
    NUM_SYNDROMES, NUM_SYMPTOMS, N = 4, 128, 400
    # label skew: each region dominated by a different syndrome mix
    mix = np.full(NUM_SYNDROMES, 0.1); mix[region_id % NUM_SYNDROMES] = 0.7
    sizes = rng.multinomial(N, mix); sizes = np.maximum(sizes, 10)
    adj, syndrome = dc_sbm(sizes, p_in=0.04, p_out=0.006, rng=rng)
    block = NUM_SYMPTOMS // (2*NUM_SYNDROMES)
    x = rng.random((len(syndrome), NUM_SYMPTOMS)) * noise
    for s in range(NUM_SYNDROMES):
        rows = syndrome==s
        x[rows, s*block:(s+1)*block] += shared
        sh = (s+region_id) % NUM_SYNDROMES
        x[rows, (NUM_SYNDROMES+sh)*block:(NUM_SYNDROMES+sh+1)*block] += regional
    g = Graph(x=x, adj=adj, y=syndrome, num_classes=NUM_SYNDROMES)
    return semi_supervised_split(g, rng, train_ratio=train_ratio, val_ratio=0.2, test_ratio=0.2)

rng = np.random.default_rng(7)
regions = [make_region(r, rng) for r in range(3)]
common = dict(max_rounds=150, patience=150, hidden=64)
o = FedOMDTrainer(regions, FedOMDConfig(**common), seed=0).run().final_test_accuracy()
f = FederatedTrainer(regions, TrainerConfig(**common), seed=0).run().final_test_accuracy()
from repro.graphs import label_divergence
print(f"label-skew epidemic: fedomd={o:.3f} fedgcn={f:.3f} JS={label_divergence(regions):.3f}")
