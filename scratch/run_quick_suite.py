"""Quick-mode experiment suite for EXPERIMENTS.md, priority-ordered, 1 seed."""
import time, traceback
from repro.experiments import get_experiment

OUT = "results/quick"
JOBS = [
    ("table4", dict(seeds=[0])),
    ("table6", dict(seeds=[0])),
    ("fig5", dict()),
    ("fig7", dict(seeds=[0])),
    ("fig6", dict(seeds=[0])),
    ("table7", dict(seeds=[0], parties=[3, 9])),
    ("table5", dict(seeds=[0])),
    ("ext_backbones", dict()),
    ("ext_partitioners", dict()),
    ("ext_serveropt", dict()),
    ("ext_privacy", dict()),
]
for name, kw in JOBS:
    t0 = time.time()
    try:
        res = get_experiment(name)(mode="quick", out_dir=OUT, **kw)
        print(res.render(), flush=True)
        print(f"[{name}] done in {time.time()-t0:.0f}s\n", flush=True)
    except Exception:
        traceback.print_exc()
        print(f"[{name}] FAILED after {time.time()-t0:.0f}s\n", flush=True)
