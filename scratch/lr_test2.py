import numpy as np
from repro.graphs import load_dataset, louvain_partition
from repro.core import FedOMDTrainer, FedOMDConfig
from repro.federated import FederatedTrainer, TrainerConfig

g = load_dataset("cora", seed=0, scale=0.25)
pr = louvain_partition(g, 3, np.random.default_rng(0))
for lr, rounds in [(0.02, 150), (0.02, 300), (0.01, 400)]:
    o = FedOMDTrainer(pr.parts, FedOMDConfig(max_rounds=rounds, patience=200, hidden=64, lr=lr), seed=0).run()
    f = FederatedTrainer(pr.parts, TrainerConfig(max_rounds=rounds, patience=200, hidden=64, lr=lr), seed=0).run()
    print(f"lr={lr} rounds={rounds}: fedomd={o.final_test_accuracy():.3f}({len(o)}) fedgcn={f.final_test_accuracy():.3f}({len(f)})", flush=True)
