"""Append late-arriving table4 dataset blocks to EXPERIMENTS.md."""
import os, sys
from repro.reporting import read_csv

note = "(quick mode, 1 seed; missing dataset blocks, if any, regenerate with"
s = open("EXPERIMENTS.md").read()
for ds in sys.argv[1:]:
    path = f"results/quick/table4_{ds}.csv"
    if not os.path.exists(path):
        print("missing", path); continue
    if f"| {ds} |" in s:
        print("already present", ds); continue
    cols = read_csv(path)
    headers = list(cols)
    rows = "\n".join(
        "| " + " | ".join(cols[h][i] for h in headers) + " |"
        for i in range(len(cols[headers[0]]))
    )
    s = s.replace("\n\n" + note, "\n" + rows + "\n\n" + note)
    print("appended", ds)
open("EXPERIMENTS.md","w").write(s)
