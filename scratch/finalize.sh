#!/bin/bash
# Final delivery sequence: stop the suite, fill EXPERIMENTS.md, tee runs.
set -x
ps aux | grep run_quick_suite3 | grep -v grep | awk '{print $2}' | xargs -r kill
sleep 2
cd /root/repo
python3 scratch/fill_experiments.py
pytest tests/ 2>&1 | tee /root/repo/test_output.txt | tail -3
pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt | tail -5
