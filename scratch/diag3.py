import numpy as np
from repro.graphs import load_dataset, louvain_partition
from repro.core import FedOMDTrainer, FedOMDConfig

g = load_dataset("cora", seed=0, scale=1.0)
pr = louvain_partition(g, 3, np.random.default_rng(0))

def run(label, rounds=300, **kw):
    cfg = FedOMDConfig(max_rounds=rounds, patience=1000, hidden=64, **kw)
    tr = FedOMDTrainer(pr.parts, cfg, seed=0)
    h = tr.run()
    print(f"{label:24s} best={h.final_test_accuracy():.4f} curve={[f'{a:.2f}' for a in h.test_accuracies[::50]]}", flush=True)

for beta in [0.01, 0.1, 1.0]:
    run(f"cmd-beta{beta}", use_ortho=False, beta=beta)
run("full-beta0.1", beta=0.1)
run("ortho-only", use_cmd=False)
