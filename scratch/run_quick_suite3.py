"""Fine-grained quick-suite: each job saves its own CSV on completion."""
import time, traceback
from repro.experiments import get_experiment
from repro.experiments.runner import MODE_PARAMS, ModeParams

# Slightly lighter than stock quick so jobs land within the session.
MODE_PARAMS["quick"] = ModeParams(scale=0.25, max_rounds=150, patience=150, seeds=1, hidden=64)

OUT = "results/quick"
JOBS = [
    ("table4_cora", "table4", dict(seeds=[0], datasets=["cora"])),
    ("table6_quick", "table6", dict(seeds=[0])),
    ("fig5_quick", "fig5", dict()),
    ("table4_citeseer", "table4", dict(seeds=[0], datasets=["citeseer"])),
    ("fig7_quick", "fig7", dict(seeds=[0])),
    ("table4_computer", "table4", dict(seeds=[0], datasets=["computer"])),
    ("table4_photo", "table4", dict(seeds=[0], datasets=["photo"])),
    ("table7_quick", "table7", dict(seeds=[0], parties=[3, 9], depths=[2, 6, 10])),
    ("fig6_quick", "fig6", dict(seeds=[0])),
    ("table5_quick", "table5", dict(seeds=[0])),
    ("ext_backbones", "ext_backbones", dict()),
    ("ext_partitioners", "ext_partitioners", dict()),
]
for label, name, kw in JOBS:
    t0 = time.time()
    try:
        res = get_experiment(name)(mode="quick", out_dir=None, **kw)
        res.name = label
        res.save(OUT)
        print(res.render(), flush=True)
        print(f"[{label}] done in {time.time()-t0:.0f}s\n", flush=True)
    except Exception:
        traceback.print_exc()
        print(f"[{label}] FAILED after {time.time()-t0:.0f}s\n", flush=True)
