import numpy as np, time
from repro.graphs import load_dataset, louvain_partition
from repro.core import FedOMDTrainer, FedOMDConfig

g = load_dataset("cora", seed=0, scale=1.0)
pr = louvain_partition(g, 3, np.random.default_rng(0))

def run(label, dropout=None, rounds=300, **kw):
    cfg = FedOMDConfig(max_rounds=rounds, patience=1000, hidden=64, **kw)
    tr = FedOMDTrainer(pr.parts, cfg, seed=0)
    if dropout is not None:
        for c in tr.clients:
            c.model.dropout_p = dropout
    h = tr.run()
    print(f"{label:28s} best={h.final_test_accuracy():.4f} curve={[f'{a:.2f}' for a in h.test_accuracies[::30]]}", flush=True)

run("neither", use_cmd=False, use_ortho=False)
run("neither-nodrop", dropout=0.0, use_cmd=False, use_ortho=False)
run("full-nodrop", dropout=0.0)
run("cmd-only-nodrop", dropout=0.0, use_ortho=False)
run("full-beta1-nodrop", dropout=0.0, beta=1.0)
