"""Legacy setup shim: offline environments without the `wheel` package
cannot run PEP 517 editable builds; `pip install -e . --no-build-isolation
--no-use-pep517` (or `python setup.py develop`) uses this instead."""
from setuptools import setup

setup()
